//! Criterion micro-benchmarks: the generated kernels and the layer
//! engines on representative ResNet-50 shapes, plus backend and
//! ablation comparisons (JIT vs intrinsics, streams vs branchy,
//! fused vs unfused).

use baselines::{ConvBaseline, MkldnnConv, XsmmConv};
use conv::fuse::{FuseCtx, FusedOp};
use conv::{Backend, ConvLayer, LayerOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use parallel::ThreadPool;
use tensor::{BlockedActs, BlockedFilter, ConvShape};

fn bench_layer(c: &mut Criterion) {
    let threads = parallel::hardware_threads().min(8);
    let pool = ThreadPool::new(threads);
    // Table I layer 8 at minibatch 4
    let shape = ConvShape::new(4, 128, 128, 28, 28, 3, 3, 1, 1);
    let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 1);
    let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);

    let mut g = c.benchmark_group("resnet_l8_fwd");
    g.sample_size(10);
    for backend in [Backend::Auto, Backend::Intrinsics] {
        let layer = ConvLayer::new(shape, LayerOptions::new(threads).with_backend(backend));
        let mut y = layer.new_output();
        g.bench_function(format!("engine-{}", layer.backend_name()), |b| {
            b.iter(|| layer.forward(&pool, &x, &w, &mut y, &FuseCtx::default()))
        });
    }
    {
        let branchy = MkldnnConv::new(shape, threads);
        let layer = ConvLayer::new(shape, LayerOptions::new(threads));
        let mut y = layer.new_output();
        g.bench_function("no-streams(mkldnn-like)", |b| {
            b.iter(|| branchy.forward(&pool, &x, &w, &mut y))
        });
        let xsmm = XsmmConv::new(shape);
        g.bench_function("small-gemm-loops(libxsmm)", |b| {
            b.iter(|| xsmm.forward(&pool, &x, &w, &mut y))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("resnet_l8_training");
    g.sample_size(10);
    let layer = ConvLayer::new(shape, LayerOptions::new(threads));
    let gy = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), layer.dout_pad(), 3);
    let mut gx = layer.new_input();
    let mut dw = layer.new_filter();
    g.bench_function("bwd(duality)", |b| b.iter(|| layer.backward(&pool, &gy, &w, &mut gx)));
    g.bench_function("upd", |b| b.iter(|| layer.update(&pool, &x, &gy, &mut dw)));
    g.finish();

    let mut g = c.benchmark_group("fusion");
    g.sample_size(10);
    let fused = ConvLayer::new(shape, LayerOptions::new(threads).with_fuse(FusedOp::BiasRelu));
    let bias: Vec<f32> = (0..shape.k).map(|i| i as f32 * 0.01).collect();
    let mut y = fused.new_output();
    g.bench_function("conv+bias+relu fused", |b| {
        b.iter(|| {
            fused.forward(&pool, &x, &w, &mut y, &FuseCtx { bias: Some(&bias), eltwise: None })
        })
    });
    g.finish();
}

fn bench_small_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("small_gemm");
    g.sample_size(20);
    let gemm = smallgemm::SmallGemm::new(28, 16, 16, 16, 16, 16, true);
    let a = vec![1.0f32; 28 * 16];
    let b = vec![0.5f32; 16 * 16];
    let mut cm = vec![0.0f32; 28 * 16];
    g.bench_function("dispatched_28x16x16", |bch| bch.iter(|| gemm.run(&a, &b, &mut cm)));
    g.bench_function("biggemm_28x16x16", |bch| {
        bch.iter(|| smallgemm::big_gemm(28, 16, 16, &a, 16, &b, 16, 1.0, &mut cm, 16))
    });
    g.finish();
}

criterion_group!(benches, bench_layer, bench_small_gemm);
criterion_main!(benches);
