//! Micro-batching inference serving: many clients, few big batches.
//!
//! The paper's setup/replay split means a planned network is fastest
//! when every `forward` replays a *full* minibatch — but real serving
//! traffic arrives as single images from many independent callers. This
//! module closes that gap with the classic batching-server shape
//! (DESIGN.md §5):
//!
//! * a [`BatchingFrontend`] accepts requests of any sample count from
//!   any number of threads and appends them to one FIFO queue;
//! * a dispatcher thread coalesces queued samples into batches of the
//!   planned minibatch — **splitting** requests larger than a
//!   minibatch across consecutive batches and **padding** the tail of
//!   a partial batch with zeros — and hands batches to replicas in
//!   round-robin order;
//! * a **deadline flush** bounds tail latency: once the oldest queued
//!   sample has waited [`ServeConfig::max_wait`], a partial batch is
//!   dispatched rather than stalling a lone request forever;
//! * `N` replica threads each own an [`InferenceSession`] on a private
//!   [`parallel::ThreadPool`] (named, pinned to a disjoint core range)
//!   while sharing one [`conv::PlanCache`] and the process-wide kernel
//!   code cache — so N replicas cost **one** JIT + dryrun pass and
//!   only replicate activation buffers.
//!
//! Results are routed back to the submitting caller through a
//! per-request completion slot; [`BatchingFrontend::stats`] snapshots
//! throughput, batch occupancy, latency percentiles and both cache
//! tiers.
//!
//! Because samples are computed independently inside a batch (the
//! batch dimension is the outermost loop of every kernel), a
//! frontend-served output is bit-identical to a direct
//! [`InferenceSession::run`] of the same sample — regardless of which
//! batch or batch position it landed in. That includes bn-graphs:
//! inference executes batch norm with *frozen* running statistics
//! (folded into the producer convolutions wherever the fusion pass
//! applies — see DESIGN.md §5.3), so no operator in the serving path
//! reads across samples.
//!
//! ## Supervision (DESIGN.md §13)
//!
//! A panic in the serving pipeline is a recoverable event, not a slow
//! outage. Every replica runs its batches under `catch_unwind`: a
//! panic fails **only the in-flight batch's requests** (each waiter
//! gets a typed [`Error::Serve`] naming the replica panic), the panic
//! is counted in [`ServerStats::replica_panics`], and the replica
//! thread rebuilds its [`InferenceSession`] — through the same shared
//! [`PlanCache`], re-applying the current [`HotSwap`] weight
//! generation and any int8 calibration — under capped exponential
//! backoff. After [`ServeConfig::max_restart_attempts`] consecutive
//! rebuild failures the frontend enters a **terminal Failed state**
//! ([`ServerStats::failed`]): the queue is drained (every queued
//! request fails typed) and [`BatchingFrontend::submit`] returns an
//! error immediately instead of queueing work that can never
//! complete. The dispatcher is supervised the same way, minus the
//! rebuild (it owns no session).
//!
//! Waits are bounded on the client side too:
//! [`PendingRequest::wait_timeout`] / [`PendingRequest::wait_deadline`]
//! (both returning [`Error::Timeout`]) cancel the completion slot on
//! expiry, so a late result is dropped rather than written into a
//! slot nobody will read.

use crate::{fault, Error, InferenceOutput, InferenceSession, IntoModelSpec, Precision, StateDict};
use conv::{CombinedCacheStats, PlanCache};
use gxm::{HotSwap, ModelSpec};
use parallel::{pin_current_thread, PoolOptions, ThreadPool};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`BatchingFrontend`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of session replicas (each on its own thread pool).
    pub replicas: usize,
    /// Thread-team size of each replica's pool. Keep it identical
    /// across replicas — the plan cache keys on the thread count, so
    /// uniform replicas share one set of plans.
    pub threads_per_replica: usize,
    /// The planned batch size every replica executes.
    pub minibatch: usize,
    /// How long the dispatcher lets a *partial* batch wait for more
    /// samples before flushing it (measured from the oldest queued
    /// sample's submission).
    pub max_wait: Duration,
    /// Pin replica `r`'s team to cores starting at
    /// `r * threads_per_replica` (best effort). Disable on
    /// oversubscribed hosts.
    pub pin_replicas: bool,
    /// Admission cap: the maximum number of *samples* the frontend
    /// queues. A [`BatchingFrontend::submit`] that would push the
    /// queue past this cap is load-shed with a typed [`Error::Busy`]
    /// instead of growing the backlog (and the latency of everything
    /// behind it) without bound. Requests larger than the cap can
    /// never be admitted.
    pub queue_cap: usize,
    /// Plan-time autotuning level for the replicas' convolutions (see
    /// [`conv::TuneLevel`]). All replicas share one plan cache, so the
    /// search runs once regardless of the replica count; `Measured`
    /// micro-benches on replica 0's pool during its build.
    pub tune: conv::TuneLevel,
    /// Numeric execution mode of every replica (see
    /// [`crate::Precision`]). At [`Precision::Int8`] each replica
    /// serves the quantized convolution path where the input range is
    /// derivable, falling back to f32 plans elsewhere; supply
    /// representative samples via [`ServeConfig::with_calibration`]
    /// to widen coverage and tighten scales.
    pub precision: Precision,
    /// Representative calibration samples (a multiple of the model's
    /// `c × h × w`, NCHW f32). At [`Precision::Int8`] every replica
    /// calibrates on these after loading weights — including after
    /// every hot-swap reload, so published weight sets are requantized
    /// against the same measured activation ranges. Ignored at f32.
    pub calibration: Vec<f32>,
    /// How many *consecutive* failed session rebuilds a crashed
    /// replica may accumulate before the frontend gives up and enters
    /// the terminal Failed state (see the [module docs](self)). A
    /// successful rebuild resets the count. Panics themselves are not
    /// attempts — a replica that crashes and rebuilds cleanly can do
    /// so indefinitely.
    pub max_restart_attempts: usize,
    /// Backoff before the first rebuild attempt of a crash; doubles
    /// per consecutive failure up to
    /// [`ServeConfig::restart_backoff_cap`].
    pub restart_backoff: Duration,
    /// Upper bound of the rebuild backoff.
    pub restart_backoff_cap: Duration,
}

impl ServeConfig {
    /// A config with the given shape and defaults of `max_wait = 2ms`,
    /// best-effort replica pinning, and an admission cap of eight
    /// batches' worth of samples per replica (at least 64).
    pub fn new(replicas: usize, threads_per_replica: usize, minibatch: usize) -> Self {
        Self {
            replicas,
            threads_per_replica,
            minibatch,
            max_wait: Duration::from_millis(2),
            pin_replicas: true,
            queue_cap: (8 * replicas * minibatch).max(64),
            tune: conv::TuneLevel::Heuristic,
            precision: Precision::F32,
            calibration: Vec::new(),
            max_restart_attempts: 5,
            restart_backoff: Duration::from_millis(10),
            restart_backoff_cap: Duration::from_millis(500),
        }
    }

    /// Set the plan-time autotuning level (see [`conv::TuneLevel`]).
    pub fn with_tune(mut self, tune: conv::TuneLevel) -> Self {
        self.tune = tune;
        self
    }

    /// Set the replicas' numeric execution mode (see
    /// [`ServeConfig::precision`]).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Supply representative calibration samples (see
    /// [`ServeConfig::calibration`]).
    pub fn with_calibration(mut self, samples: Vec<f32>) -> Self {
        self.calibration = samples;
        self
    }

    /// Override the deadline-flush window.
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Enable/disable best-effort core pinning of the replica pools.
    pub fn with_pinning(mut self, pin: bool) -> Self {
        self.pin_replicas = pin;
        self
    }

    /// Override the admission cap (queued samples; see
    /// [`ServeConfig::queue_cap`]).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Override the replica restart policy: `max_attempts` consecutive
    /// rebuild failures before the terminal Failed state, starting
    /// from `backoff` and doubling up to `cap` between attempts.
    pub fn with_restart_policy(
        mut self,
        max_attempts: usize,
        backoff: Duration,
        cap: Duration,
    ) -> Self {
        self.max_restart_attempts = max_attempts;
        self.restart_backoff = backoff;
        self.restart_backoff_cap = cap;
        self
    }
}

/// Why a request failed before completing — the typed poison a
/// queued sample applies to its completion slot when it is dropped
/// unserved, and the reason behind every serving-side
/// [`Error::Serve`] returned by [`PendingRequest::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailReason {
    /// The serving pipeline panicked (replica batch execution or the
    /// dispatcher) while this request was in flight. The pipeline
    /// restarts; resubmitting is reasonable.
    ReplicaPanic,
    /// The frontend shut down — orderly teardown or the terminal
    /// Failed state — before this request completed.
    Shutdown,
    /// The waiter cancelled the request (its
    /// [`PendingRequest::wait_timeout`] /
    /// [`PendingRequest::wait_deadline`] expired); a late result is
    /// dropped, not delivered.
    Cancelled,
}

impl FailReason {
    fn to_error(self) -> Error {
        Error::Serve(
            match self {
                FailReason::ReplicaPanic => {
                    "serving pipeline panicked while the request was in flight; \
                     the replica restarts — resubmit"
                }
                FailReason::Shutdown => "frontend shut down before the request completed",
                FailReason::Cancelled => "request was cancelled by its waiter's deadline",
            }
            .to_string(),
        )
    }
}

/// Lock-free failure counters shared by the frontend, every queued
/// sample and every request handle (a separate allocation from
/// [`Shared`] so a [`Pending`] sitting in `Shared.queue` never holds a
/// strong reference back to the queue that holds it).
#[derive(Default)]
struct ServeCounters {
    replica_panics: AtomicUsize,
    replica_restarts: AtomicUsize,
    requests_failed: AtomicUsize,
    request_timeouts: AtomicUsize,
}

/// One queued sample: its pixels, where its result goes, and when it
/// arrived (the latency clock and the deadline-flush anchor).
struct Pending {
    image: Box<[f32]>,
    slot: Arc<ResponseState>,
    index: usize,
    enqueued: Instant,
    /// Set once the sample's result has been written to its slot.
    done: bool,
    /// The poison applied if this sample is dropped unserved. Defaults
    /// to [`FailReason::Shutdown`] (a drained queue); the pipeline
    /// upgrades it to [`FailReason::ReplicaPanic`] the moment the
    /// sample enters a batch that could die with its executor.
    fail_reason: FailReason,
    counters: Arc<ServeCounters>,
}

impl Drop for Pending {
    /// A sample dropped before completion (replica panicked mid-batch,
    /// or the pipeline drained on failure) poisons its request so the
    /// waiting client wakes up and fails instead of blocking forever.
    /// The first poison of a slot wins (and counts the request as
    /// failed); a slot already failed — or cancelled by its waiter —
    /// keeps its original reason.
    fn drop(&mut self) {
        if !self.done {
            if let Ok(mut g) = self.slot.inner.lock() {
                if g.failed.is_none() {
                    g.failed = Some(self.fail_reason);
                    self.counters.requests_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.slot.cv.notify_all();
        }
    }
}

/// Completion slot shared between a request's samples and its waiting
/// client.
struct ResponseState {
    inner: Mutex<ResponseInner>,
    cv: Condvar,
}

struct ResponseInner {
    probs: Vec<f32>,
    top1: Vec<usize>,
    remaining: usize,
    /// Set when a sample of this request was abandoned (see
    /// [`Pending::drop`]) or the waiter cancelled; waiters get a typed
    /// error rather than hanging, and replicas drop late results
    /// rather than writing into a slot nobody will read.
    failed: Option<FailReason>,
}

/// Handle to an in-flight request; [`PendingRequest::wait`] blocks
/// until every sample of the request has been served (and
/// [`PendingRequest::wait_timeout`] / [`PendingRequest::wait_deadline`]
/// bound that wait).
pub struct PendingRequest {
    slot: Arc<ResponseState>,
    count: usize,
    counters: Arc<ServeCounters>,
}

impl PendingRequest {
    /// Number of samples this request covers.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Block until the whole request is served and return its results
    /// in submission order.
    ///
    /// # Errors
    /// [`Error::Serve`] if the serving pipeline failed before this
    /// request completed (the message names the failure mode: pipeline
    /// panic vs. shutdown) — the alternative would be to block
    /// forever.
    pub fn wait(self) -> Result<InferenceOutput, Error> {
        self.wait_inner(None)
    }

    /// [`Self::wait`], giving up after `timeout`.
    ///
    /// On expiry the request is **cancelled**: the completion slot is
    /// poisoned so any sample still in flight drops its late result
    /// instead of delivering it, and the frontend counts a
    /// [`ServerStats::request_timeouts`]. The samples already admitted
    /// still occupy the queue/batch they landed in (cancellation stops
    /// the *delivery*, it does not recall the work).
    ///
    /// # Errors
    /// [`Error::Timeout`] when the bound expires first; otherwise as
    /// [`Self::wait`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<InferenceOutput, Error> {
        self.wait_inner(Some(Instant::now() + timeout))
    }

    /// [`Self::wait_timeout`] with an absolute deadline — the form a
    /// server propagating one overall request budget across several
    /// waits wants. A deadline already in the past cancels and times
    /// out immediately.
    ///
    /// # Errors
    /// As [`Self::wait_timeout`].
    pub fn wait_deadline(self, deadline: Instant) -> Result<InferenceOutput, Error> {
        self.wait_inner(Some(deadline))
    }

    fn wait_inner(self, deadline: Option<Instant>) -> Result<InferenceOutput, Error> {
        let start = Instant::now();
        let mut g = self.slot.inner.lock().unwrap();
        loop {
            if let Some(reason) = g.failed {
                return Err(reason.to_error());
            }
            if g.remaining == 0 {
                break;
            }
            match deadline {
                None => g = self.slot.cv.wait(g).unwrap(),
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        // cancel under the slot lock: late results
                        // check `failed` under the same lock, so after
                        // this point none can be delivered
                        g.failed = Some(FailReason::Cancelled);
                        self.counters.request_timeouts.fetch_add(1, Ordering::Relaxed);
                        return Err(Error::Timeout { waited: start.elapsed() });
                    }
                    g = self.slot.cv.wait_timeout(g, dl - now).unwrap().0;
                }
            }
        }
        Ok(InferenceOutput {
            probs: std::mem::take(&mut g.probs),
            top1: std::mem::take(&mut g.top1),
        })
    }
}

/// Latency samples kept for percentile estimation; older samples are
/// overwritten ring-buffer style so a long-lived frontend's stats stay
/// bounded (the percentiles then describe the most recent window).
const LATENCY_WINDOW: usize = 1 << 16;

#[derive(Default)]
struct StatsInner {
    requests: usize,
    images: usize,
    batches: usize,
    batched_images: usize,
    deadline_flushes: usize,
    busy_rejections: usize,
    reloads: usize,
    reload_failures: usize,
    latencies_us: Vec<u64>,
    latency_next: usize,
}

impl StatsInner {
    fn record_latency(&mut self, us: u64) {
        if self.latencies_us.len() < LATENCY_WINDOW {
            self.latencies_us.push(us);
        } else {
            self.latencies_us[self.latency_next] = us;
        }
        self.latency_next = (self.latency_next + 1) % LATENCY_WINDOW;
    }
}

/// Snapshot of a frontend's serving counters.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Replica count of the frontend.
    pub replicas: usize,
    /// The planned batch size.
    pub minibatch: usize,
    /// Client requests accepted so far.
    pub requests: usize,
    /// Samples accepted so far (a request may carry several).
    pub images: usize,
    /// Batches dispatched to replicas so far.
    pub batches: usize,
    /// Mean fraction of batch slots holding real samples (1.0 = every
    /// dispatched batch was full; padding pulls it below 1).
    pub mean_occupancy: f64,
    /// Batches flushed partially filled by the `max_wait` deadline.
    pub deadline_flushes: usize,
    /// Requests load-shed with [`Error::Busy`] because admitting them
    /// would have pushed the queue past [`ServeConfig::queue_cap`].
    pub busy_rejections: usize,
    /// The admission cap ([`ServeConfig::queue_cap`]).
    pub queue_cap: usize,
    /// Samples queued (admitted, not yet dispatched) at snapshot time.
    pub queue_depth: usize,
    /// Generation of the currently published hot-swap weights (0 =
    /// the replicas still serve the weights they were built with; see
    /// [`BatchingFrontend::publish_weights`]).
    pub weight_generation: u64,
    /// Successful [`BatchingFrontend::publish_weights`] calls.
    pub reloads: usize,
    /// Published weight sets a replica failed to apply (the replica
    /// keeps serving its previous weights). Always 0 unless a dict
    /// that passed schema validation fails the network's stricter
    /// load-time checks.
    pub reload_failures: usize,
    /// Serving-thread panics caught by the supervisor (replica batch
    /// execution or the dispatcher). Each failed only its in-flight
    /// batch; see [`ServerStats::replica_restarts`] for the
    /// recoveries.
    pub replica_panics: usize,
    /// Successful replica session rebuilds after a panic.
    pub replica_restarts: usize,
    /// Requests that resolved with a serving-side [`Error::Serve`]
    /// (pipeline panic or shutdown poison). Waiter-side cancellations
    /// are counted separately in
    /// [`ServerStats::request_timeouts`], never here.
    pub requests_failed: usize,
    /// Bounded waits ([`PendingRequest::wait_timeout`] /
    /// [`PendingRequest::wait_deadline`]) that expired and cancelled
    /// their request.
    pub request_timeouts: usize,
    /// True once the frontend entered the terminal Failed state
    /// (replica restarts exhausted): every queued request was failed
    /// and [`BatchingFrontend::submit`] returns a typed error.
    pub failed: bool,
    /// Median submit-to-result latency over the most recent completed
    /// samples (a bounded window of 65536).
    pub p50_latency: Duration,
    /// 99th-percentile submit-to-result latency over the same window.
    pub p99_latency: Duration,
    /// Plan-cache + kernel-code-cache counters (the shared tiers all
    /// replicas sit on).
    pub caches: CombinedCacheStats,
}

/// State shared by clients, the dispatcher and the replicas.
struct Shared {
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    /// Signalled by the dispatcher whenever it drains samples — the
    /// wait side of [`BatchingFrontend::submit_within`].
    space_cv: Condvar,
    shutdown: AtomicBool,
    /// The terminal Failed state (set together with `shutdown`, under
    /// the queue lock, by [`enter_failed_state`]): replica restarts
    /// exhausted, every queued request failed, `submit` rejects.
    failed: AtomicBool,
    counters: Arc<ServeCounters>,
    stats: Mutex<StatsInner>,
    /// The published-weights cell replicas poll at batch boundaries.
    swap: Arc<HotSwap>,
    sample_elems: usize,
    minibatch: usize,
    classes: usize,
    queue_cap: usize,
    /// The replicas' numeric execution mode.
    precision: Precision,
    /// Calibration samples re-applied by every replica after a weight
    /// hot swap (empty at f32 or when none were supplied) — so
    /// reloaded weights requantize against the same measured ranges
    /// the replicas were built with.
    calibration: Arc<Vec<f32>>,
}

/// A multi-client micro-batching front-end over replicated
/// [`InferenceSession`]s (see the [module docs](self) for the
/// architecture).
///
/// ```
/// use anatomy::serve::{BatchingFrontend, ServeConfig};
/// use anatomy::{ConvOpts, GraphBuilder};
/// use std::time::Duration;
///
/// let model = GraphBuilder::new()
///     .input("data", 3, 8, 8)
///     .conv("c1", ConvOpts::k(16).rs(3).pad(1).bias().relu())
///     .gap("g")
///     .fc("logits", 4)
///     .softmax("loss")
///     .build()
///     .unwrap();
/// let cfg = ServeConfig::new(1, 1, 4).with_max_wait(Duration::from_millis(1));
/// let frontend = BatchingFrontend::new(&model, cfg).unwrap();
///
/// // a lone image: padded to the planned batch after the deadline
/// let image = vec![0.25f32; 3 * 8 * 8];
/// let out = frontend.infer(&image).unwrap();
/// assert_eq!(out.top1.len(), 1);
/// assert_eq!(out.probs.len(), frontend.classes());
///
/// // wrong-sized payloads are typed errors, not panics
/// assert!(frontend.submit(&image[..5]).is_err());
///
/// let stats = frontend.shutdown();
/// assert_eq!(stats.images, 1);
/// assert!(stats.batches >= 1);
/// ```
pub struct BatchingFrontend {
    shared: Arc<Shared>,
    cache: PlanCache,
    replicas: usize,
    /// `(name, dims)` of every parameter tensor the served network
    /// expects — the schema [`Self::publish_weights`] validates
    /// candidate dicts against before publishing.
    schema: Vec<(String, Vec<usize>)>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchingFrontend {
    /// Build a frontend with a private [`PlanCache`]. `model` is
    /// anything [`IntoModelSpec`]: a spec, a builder, or topology
    /// text.
    pub fn new(model: impl IntoModelSpec, cfg: ServeConfig) -> Result<Self, Error> {
        Self::with_cache(model, cfg, PlanCache::new())
    }

    /// Build a frontend serving trained weights: every replica loads
    /// `weights` (a [`StateDict`] exported by
    /// [`gxm::Network::state_dict`]) before serving. Replicas are
    /// deterministic in the weights alone — every replica serves the
    /// identical bits, and bn-graph predictions use the dict's frozen
    /// running statistics (batch-composition-independent).
    pub fn with_weights(
        model: impl IntoModelSpec,
        cfg: ServeConfig,
        weights: &StateDict,
    ) -> Result<Self, Error> {
        let spec = model.into_model_spec()?;
        Self::build(&spec, cfg, PlanCache::new(), Some(weights))
    }

    /// Build a frontend whose replicas plan through `cache` (share one
    /// cache across frontends to JIT each distinct layer shape once
    /// per process).
    ///
    /// All replicas are built through the same cache with identical
    /// thread counts, so replica 1..N hit the plans replica 0 built:
    /// N replicas cost one JIT + dryrun pass.
    pub fn with_cache(
        model: impl IntoModelSpec,
        cfg: ServeConfig,
        cache: PlanCache,
    ) -> Result<Self, Error> {
        let spec = model.into_model_spec()?;
        Self::build(&spec, cfg, cache, None)
    }

    /// [`Self::with_cache`] plus optional initial weights — the
    /// constructor a multi-model host uses so every hosted frontend
    /// plans through one shared cache *and* starts from its own
    /// trained [`StateDict`].
    pub fn with_cache_and_weights(
        model: impl IntoModelSpec,
        cfg: ServeConfig,
        cache: PlanCache,
        weights: Option<&StateDict>,
    ) -> Result<Self, Error> {
        let spec = model.into_model_spec()?;
        Self::build(&spec, cfg, cache, weights)
    }

    fn build(
        spec: &ModelSpec,
        cfg: ServeConfig,
        cache: PlanCache,
        weights: Option<&StateDict>,
    ) -> Result<Self, Error> {
        if cfg.replicas == 0 || cfg.threads_per_replica == 0 || cfg.minibatch == 0 {
            return Err(Error::BadInput(
                "replicas, threads_per_replica and minibatch must be >= 1".to_string(),
            ));
        }
        if cfg.queue_cap < cfg.minibatch {
            return Err(Error::BadInput(format!(
                "queue_cap ({}) must be >= minibatch ({}) or full batches could never form",
                cfg.queue_cap, cfg.minibatch
            )));
        }
        // Build every session up front (cheap after the first: shared
        // plan cache), then move each into its replica thread.
        let mut sessions = Vec::with_capacity(cfg.replicas);
        for r in 0..cfg.replicas {
            let mut opts =
                PoolOptions::new(cfg.threads_per_replica).with_name(format!("serve-r{r}"));
            opts = if cfg.pin_replicas {
                opts.with_core_offset(r * cfg.threads_per_replica)
            } else {
                opts.without_pinning()
            };
            let pool = Arc::new(ThreadPool::with_options(opts));
            let mut session = InferenceSession::with_shared_quantized(
                spec,
                cfg.minibatch,
                pool,
                cache.clone(),
                cfg.tune,
                cfg.precision,
            )?;
            if let Some(sd) = weights {
                session.load_state_dict(sd)?;
            }
            if cfg.precision == Precision::Int8 && !cfg.calibration.is_empty() {
                let se = session.sample_elems();
                if !cfg.calibration.len().is_multiple_of(se) {
                    return Err(Error::BadInput(format!(
                        "calibration must be a multiple of sample_elems ({se}) f32s, got {}",
                        cfg.calibration.len()
                    )));
                }
                session.calibrate(&cfg.calibration, cfg.calibration.len() / se)?;
            }
            sessions.push(session);
        }
        let schema: Vec<(String, Vec<usize>)> = sessions[0]
            .network()
            .state_dict()
            .iter()
            .map(|(name, entry)| (name.to_string(), entry.dims.clone()))
            .collect();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            space_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            counters: Arc::new(ServeCounters::default()),
            stats: Mutex::new(StatsInner::default()),
            swap: Arc::new(HotSwap::new()),
            sample_elems: sessions[0].sample_elems(),
            minibatch: cfg.minibatch,
            classes: sessions[0].classes(),
            queue_cap: cfg.queue_cap,
            precision: cfg.precision,
            calibration: Arc::new(if cfg.precision == Precision::Int8 {
                cfg.calibration.clone()
            } else {
                Vec::new()
            }),
        });
        let initial_weights = weights.map(|w| Arc::new(w.clone()));
        let restart = RestartPolicy {
            max_attempts: cfg.max_restart_attempts,
            backoff: cfg.restart_backoff,
            cap: cfg.restart_backoff_cap,
        };
        let mut txs = Vec::with_capacity(cfg.replicas);
        let mut workers = Vec::with_capacity(cfg.replicas);
        for (r, session) in sessions.into_iter().enumerate() {
            // bound 1: the dispatcher stays at most one batch ahead of
            // each replica, which keeps round-robin assignment fair
            // and bounds queued-but-undelivered work
            let (tx, rx) = sync_channel::<Vec<Pending>>(1);
            let sh = Arc::clone(&shared);
            let pin = cfg.pin_replicas.then_some(r * cfg.threads_per_replica);
            let factory = ReplicaFactory {
                spec: spec.clone(),
                minibatch: cfg.minibatch,
                threads: cfg.threads_per_replica,
                pin_offset: pin,
                pool_name: format!("serve-r{r}"),
                cache: cache.clone(),
                tune: cfg.tune,
                precision: cfg.precision,
                initial_weights: initial_weights.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("serve-replica-{r}"))
                .spawn(move || {
                    // the replica thread participates in its pool's
                    // regions as tid 0 — keep it on the team's range
                    if let Some(core) = pin {
                        pin_current_thread(core);
                    }
                    replica_loop(session, rx, sh, factory, restart);
                })
                .map_err(|e| Error::Serve(format!("spawn replica {r}: {e}")))?;
            txs.push(tx);
            workers.push(handle);
        }
        let dispatcher = {
            let sh = Arc::clone(&shared);
            let max_wait = cfg.max_wait;
            std::thread::Builder::new()
                .name("serve-dispatch".to_string())
                .spawn(move || dispatcher_loop(sh, txs, max_wait))
                .map_err(|e| Error::Serve(format!("spawn dispatcher: {e}")))?
        };
        Ok(Self {
            shared,
            cache,
            replicas: cfg.replicas,
            schema,
            dispatcher: Some(dispatcher),
            workers,
        })
    }

    /// Submit a request of one or more samples (`len` must be a
    /// non-zero multiple of [`Self::sample_elems`], in NCHW f32) and
    /// return a handle to wait on.
    ///
    /// Requests larger than the planned minibatch are split across
    /// consecutive batches; the handle completes when the last piece
    /// is served. Samples of one request stay in submission order.
    ///
    /// Admission control is immediate: a request that does not fit
    /// the bounded queue right now is load-shed (use
    /// [`Self::submit_within`] to wait for space instead).
    ///
    /// # Errors
    /// [`Error::BadInput`] for empty or non-sample-multiple payloads;
    /// [`Error::Busy`] when admitting the request would push the
    /// queue past [`ServeConfig::queue_cap`]; [`Error::Serve`] if the
    /// pipeline has shut down (a replica died) — new work could never
    /// complete.
    pub fn submit(&self, images: &[f32]) -> Result<PendingRequest, Error> {
        self.submit_within(images, Duration::ZERO)
    }

    /// [`Self::submit`], but willing to wait up to `admission_wait`
    /// for queue space before load-shedding with [`Error::Busy`].
    ///
    /// The wait is for *admission only* — once admitted, the returned
    /// handle behaves exactly like one from [`Self::submit`], and the
    /// sample's latency clock starts at admission. A request larger
    /// than [`ServeConfig::queue_cap`] samples can never be admitted
    /// and is shed immediately regardless of `admission_wait`.
    pub fn submit_within(
        &self,
        images: &[f32],
        admission_wait: Duration,
    ) -> Result<PendingRequest, Error> {
        let se = self.shared.sample_elems;
        if images.is_empty() || !images.len().is_multiple_of(se) {
            return Err(Error::BadInput(format!(
                "request must be a non-zero multiple of sample_elems ({se}) f32s, got {}",
                images.len()
            )));
        }
        let count = images.len() / se;
        let slot = Arc::new(ResponseState {
            inner: Mutex::new(ResponseInner {
                probs: vec![0.0; count * self.shared.classes],
                top1: vec![0; count],
                remaining: count,
                failed: None,
            }),
            cv: Condvar::new(),
        });
        // slice + copy the samples before taking the queue lock so a
        // large request doesn't stall the dispatcher's deadline clock
        let mut pendings: Vec<Pending> = (0..count)
            .map(|i| Pending {
                image: images[i * se..(i + 1) * se].into(),
                slot: Arc::clone(&slot),
                index: i,
                enqueued: Instant::now(),
                done: false,
                fail_reason: FailReason::Shutdown,
                counters: Arc::clone(&self.shared.counters),
            })
            .collect();
        let deadline = Instant::now() + admission_wait;
        {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                // checked under the queue lock: the failure paths set
                // their flags and clear the queue under this same
                // lock, so a request can never slip in behind the
                // drained dispatcher and strand its client
                if self.shared.shutdown.load(Ordering::Acquire) {
                    // dropping `pendings` would poison the fresh slot
                    // and mark the request failed — return the typed
                    // error directly instead
                    pendings.iter_mut().for_each(|p| p.done = true);
                    let failed = self.shared.failed.load(Ordering::Acquire);
                    return Err(Error::Serve(if failed {
                        "frontend is in the terminal Failed state (replica restarts \
                         exhausted); rebuild the frontend"
                            .to_string()
                    } else {
                        "frontend is shut down; new requests would never complete".to_string()
                    }));
                }
                if q.len() + count <= self.shared.queue_cap {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    let queued = q.len();
                    drop(q);
                    pendings.iter_mut().for_each(|p| p.done = true);
                    self.shared.stats.lock().unwrap().busy_rejections += 1;
                    return Err(Error::Busy { queued, capacity: self.shared.queue_cap });
                }
                q = self.shared.space_cv.wait_timeout(q, deadline - now).unwrap().0;
            }
            // the latency clock and the deadline-flush anchor start at
            // *admission*, not at the start of an admission wait
            let now = Instant::now();
            pendings.iter_mut().for_each(|p| p.enqueued = now);
            q.extend(pendings.drain(..));
        }
        self.shared.queue_cv.notify_all();
        {
            let mut s = self.shared.stats.lock().unwrap();
            s.requests += 1;
            s.images += count;
        }
        Ok(PendingRequest { slot, count, counters: Arc::clone(&self.shared.counters) })
    }

    /// Submit and block: `submit(images)?.wait()`.
    pub fn infer(&self, images: &[f32]) -> Result<InferenceOutput, Error> {
        self.submit(images)?.wait()
    }

    /// Class count of the served model.
    pub fn classes(&self) -> usize {
        self.shared.classes
    }

    /// Elements per sample (`c × h × w` of the model input).
    pub fn sample_elems(&self) -> usize {
        self.shared.sample_elems
    }

    /// The planned batch size.
    pub fn minibatch(&self) -> usize {
        self.shared.minibatch
    }

    /// Number of session replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The replicas' numeric execution mode.
    pub fn precision(&self) -> Precision {
        self.shared.precision
    }

    /// The plan cache all replicas share.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Publish a new weight set for zero-downtime hot swap.
    ///
    /// The dict is validated against the served network's parameter
    /// schema (same tensor names and dims), then atomically installed
    /// in the shared [`gxm::HotSwap`] cell. Each replica notices the
    /// new generation at its next batch boundary (one atomic load per
    /// batch) and applies it via
    /// [`load_state_dict`](crate::InferenceSession::load_state_dict)
    /// — which refolds the fused-BN weights — before running the
    /// batch. In-flight batches finish on the weights they started
    /// with; no request is dropped or paused by a swap (DESIGN.md
    /// §9.3).
    ///
    /// Returns the new weight generation (monotonic from 1).
    ///
    /// # Errors
    /// [`Error::StateDict`] when the dict's tensor names/dims do not
    /// match the served model — nothing is published on error.
    pub fn publish_weights(&self, weights: StateDict) -> Result<u64, Error> {
        {
            let mut want = self.schema.iter();
            let mut got = weights.iter();
            loop {
                match (want.next(), got.next()) {
                    (None, None) => break,
                    (Some((name, dims)), Some((gname, gentry))) => {
                        if name != gname || dims != &gentry.dims {
                            return Err(Error::StateDict(format!(
                                "dict does not match the served model: expected tensor '{name}' \
                                 dims {dims:?}, got '{gname}' dims {:?}",
                                gentry.dims
                            )));
                        }
                    }
                    (Some((name, _)), None) => {
                        return Err(Error::StateDict(format!(
                            "dict does not match the served model: missing tensor '{name}'"
                        )));
                    }
                    (None, Some((gname, _))) => {
                        return Err(Error::StateDict(format!(
                            "dict does not match the served model: unexpected tensor '{gname}'"
                        )));
                    }
                }
            }
        }
        let generation = self.shared.swap.publish(Arc::new(weights));
        self.shared.stats.lock().unwrap().reloads += 1;
        Ok(generation)
    }

    /// Generation of the most recently published weights (0 until the
    /// first [`Self::publish_weights`]).
    pub fn weight_generation(&self) -> u64 {
        self.shared.swap.generation()
    }

    /// Samples admitted but not yet dispatched to a replica.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// The admission cap ([`ServeConfig::queue_cap`]).
    pub fn queue_cap(&self) -> usize {
        self.shared.queue_cap
    }

    /// True once the frontend has entered the terminal Failed state
    /// (consecutive replica rebuilds exhausted — see the
    /// [module docs](self)). [`Self::submit`] rejects with a typed
    /// [`Error::Serve`] from then on; the only recovery is building a
    /// new frontend.
    pub fn failed(&self) -> bool {
        self.shared.failed.load(Ordering::Acquire)
    }

    /// Snapshot the serving counters (latency percentiles cover
    /// completed samples only).
    pub fn stats(&self) -> ServerStats {
        // copy everything out, then drop the guard before the sort so
        // replicas recording latencies never wait on a stats poll
        let (mut lat, s) = {
            let s = self.shared.stats.lock().unwrap();
            (
                s.latencies_us.clone(),
                StatsInner {
                    requests: s.requests,
                    images: s.images,
                    batches: s.batches,
                    batched_images: s.batched_images,
                    deadline_flushes: s.deadline_flushes,
                    busy_rejections: s.busy_rejections,
                    reloads: s.reloads,
                    reload_failures: s.reload_failures,
                    latencies_us: Vec::new(),
                    latency_next: 0,
                },
            )
        };
        lat.sort_unstable();
        let pct = |q: f64| {
            if lat.is_empty() {
                Duration::ZERO
            } else {
                let idx = ((lat.len() - 1) as f64 * q).round() as usize;
                Duration::from_micros(lat[idx])
            }
        };
        ServerStats {
            replicas: self.replicas,
            minibatch: self.shared.minibatch,
            requests: s.requests,
            images: s.images,
            batches: s.batches,
            mean_occupancy: if s.batches == 0 {
                0.0
            } else {
                s.batched_images as f64 / (s.batches * self.shared.minibatch) as f64
            },
            deadline_flushes: s.deadline_flushes,
            busy_rejections: s.busy_rejections,
            queue_cap: self.shared.queue_cap,
            queue_depth: self.queue_depth(),
            weight_generation: self.shared.swap.generation(),
            reloads: s.reloads,
            reload_failures: s.reload_failures,
            replica_panics: self.shared.counters.replica_panics.load(Ordering::Relaxed),
            replica_restarts: self.shared.counters.replica_restarts.load(Ordering::Relaxed),
            requests_failed: self.shared.counters.requests_failed.load(Ordering::Relaxed),
            request_timeouts: self.shared.counters.request_timeouts.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Acquire),
            p50_latency: pct(0.50),
            p99_latency: pct(0.99),
            caches: self.cache.combined_stats(),
        }
    }

    /// Zero every serving counter and drop the recorded latencies
    /// (cache counters are unaffected — they describe setup, not
    /// traffic). Benchmarks call this after warmup so percentiles and
    /// occupancy describe only the measured traffic.
    pub fn reset_stats(&self) {
        *self.shared.stats.lock().unwrap() = StatsInner::default();
        let c = &self.shared.counters;
        c.replica_panics.store(0, Ordering::Relaxed);
        c.replica_restarts.store(0, Ordering::Relaxed);
        c.requests_failed.store(0, Ordering::Relaxed);
        c.request_timeouts.store(0, Ordering::Relaxed);
    }

    /// Drain the queue, stop the dispatcher and every replica, and
    /// return the final counters. Dropping the frontend performs the
    /// same orderly shutdown (minus the returned stats).
    pub fn shutdown(mut self) -> ServerStats {
        self.join_workers();
        self.stats()
    }

    fn join_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        self.shared.space_cv.notify_all();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for BatchingFrontend {
    fn drop(&mut self) {
        self.join_workers();
    }
}

/// Everything a replica thread needs to rebuild its session after a
/// panic: the spec, the pool shape, the shared plan cache, and the
/// initial weights (used only until the first hot-swap publish — a
/// rebuild always prefers the freshest published generation).
struct ReplicaFactory {
    spec: ModelSpec,
    minibatch: usize,
    threads: usize,
    pin_offset: Option<usize>,
    pool_name: String,
    cache: PlanCache,
    tune: conv::TuneLevel,
    precision: Precision,
    initial_weights: Option<Arc<StateDict>>,
}

impl ReplicaFactory {
    /// Rebuild a crashed replica's session from scratch: fresh thread
    /// pool (same name/pinning — the old pool may have died with the
    /// panic), a session planned through the shared cache (so the
    /// rebuild costs no new JIT of already-planned shapes), the
    /// current weights, and re-calibration at int8. Returns the
    /// session and the weight generation it serves.
    fn rebuild(&self, shared: &Shared) -> Result<(InferenceSession, u64), Error> {
        fault::point("replica.rebuild");
        let mut opts = PoolOptions::new(self.threads).with_name(self.pool_name.clone());
        opts = match self.pin_offset {
            Some(off) => opts.with_core_offset(off),
            None => opts.without_pinning(),
        };
        let pool = Arc::new(ThreadPool::with_options(opts));
        let mut session = InferenceSession::with_shared_quantized(
            &self.spec,
            self.minibatch,
            pool,
            self.cache.clone(),
            self.tune,
            self.precision,
        )?;
        let (published, gen) = shared.swap.snapshot();
        if let Some(sd) = &published {
            session.load_state_dict(sd)?;
        } else if let Some(sd) = &self.initial_weights {
            session.load_state_dict(sd)?;
        }
        if !shared.calibration.is_empty() {
            let n = shared.calibration.len() / shared.sample_elems;
            session.calibrate(&shared.calibration, n)?;
        }
        Ok((session, gen))
    }
}

/// The replica restart policy of [`ServeConfig::with_restart_policy`].
#[derive(Clone, Copy)]
struct RestartPolicy {
    max_attempts: usize,
    backoff: Duration,
    cap: Duration,
}

/// Put the frontend into the terminal Failed state: flag it and drain
/// the queue under the queue lock (so no submit can slip in behind
/// the drain), then poison every drained request and wake everyone —
/// admission waiters, the dispatcher, and clients blocked in `wait`.
/// Idempotent; callable from any serving thread.
fn enter_failed_state(shared: &Shared) {
    let drained: Vec<Pending> = {
        let mut q = shared.queue.lock().unwrap();
        shared.failed.store(true, Ordering::Release);
        shared.shutdown.store(true, Ordering::Release);
        q.drain(..).collect()
    };
    // dropping outside the queue lock: each Pending takes its slot
    // lock to poison the request
    drop(drained);
    shared.queue_cv.notify_all();
    shared.space_cv.notify_all();
}

/// Sleep for `total`, waking early (in ≤25ms slices) if the frontend
/// shuts down — a replica in restart backoff must not stall teardown.
fn sleep_unless_shutdown(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    while !shared.shutdown.load(Ordering::Acquire) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(25)));
    }
}

/// The dispatcher's supervisor: run [`dispatch_batches`] until clean
/// shutdown, restarting it after a caught panic. A dispatcher panic
/// fails only the batch in hand (its `Pending`s unwind and poison
/// their requests); the dispatcher owns no session, so the restart
/// itself is free and unlimited.
fn dispatcher_loop(shared: Arc<Shared>, txs: Vec<SyncSender<Vec<Pending>>>, max_wait: Duration) {
    let mut rr = 0usize;
    loop {
        match catch_unwind(AssertUnwindSafe(|| dispatch_batches(&shared, &txs, max_wait, &mut rr)))
        {
            Ok(()) => return,
            Err(_) => {
                shared.counters.replica_panics.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// One dispatcher incarnation: form batches (full, or partial at the
/// deadline / shutdown) and hand them to replicas round-robin.
/// Returns on shutdown; panics propagate to [`dispatcher_loop`].
fn dispatch_batches(
    shared: &Shared,
    txs: &[SyncSender<Vec<Pending>>],
    max_wait: Duration,
    rr: &mut usize,
) {
    loop {
        let (batch, flushed_early) = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if q.len() >= shared.minibatch || shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match q.front() {
                    None => q = shared.queue_cv.wait(q).unwrap(),
                    Some(front) => {
                        // partial batch: wait for more samples, but no
                        // longer than the oldest sample's deadline
                        let deadline = front.enqueued + max_wait;
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        q = shared.queue_cv.wait_timeout(q, deadline - now).unwrap().0;
                    }
                }
            }
            let draining = shared.shutdown.load(Ordering::Acquire);
            if q.is_empty() {
                if draining {
                    return;
                }
                continue; // spurious wakeup
            }
            let take = q.len().min(shared.minibatch);
            let mut batch: Vec<Pending> = q.drain(..take).collect();
            // from here until a replica owns the batch, a dispatcher
            // panic kills it — poison as a pipeline panic, not as a
            // shutdown drain
            for p in &mut batch {
                p.fail_reason = FailReason::ReplicaPanic;
            }
            // a partial batch drained at shutdown is not a *deadline*
            // flush — don't let teardown skew the batching stats
            let flushed_early = batch.len() < shared.minibatch && !draining;
            (batch, flushed_early)
        };
        // queue space was just freed — wake admission waiters
        shared.space_cv.notify_all();
        {
            let mut s = shared.stats.lock().unwrap();
            s.batches += 1;
            s.batched_images += batch.len();
            if flushed_early {
                s.deadline_flushes += 1;
            }
        }
        fault::point("dispatcher.batch");
        // round-robin over replicas; `send` blocks when the target is
        // busy (bound-1 channel), which is the frontend's backpressure
        if txs[*rr].send(batch).is_err() {
            // a replica's receiver is gone — it exhausted its restart
            // budget (or exited terminally some other way), so the
            // frontend cannot promise capacity any more: enter the
            // terminal Failed state. The batch inside the SendError
            // and everything still queued drop and poison their
            // request slots, so every waiting client wakes and fails
            // instead of hanging.
            enter_failed_state(shared);
            return;
        }
        *rr = (*rr + 1) % txs.len();
    }
}

/// A replica thread's supervisor: run [`serve_batches`] on the owned
/// session until clean shutdown; on a caught panic, count it and
/// rebuild the session through the [`ReplicaFactory`] under capped
/// exponential backoff. Consecutive rebuild failures beyond the
/// [`RestartPolicy`] budget put the whole frontend into the terminal
/// Failed state (see the [module docs](self)).
fn replica_loop(
    session: InferenceSession,
    rx: Receiver<Vec<Pending>>,
    shared: Arc<Shared>,
    factory: ReplicaFactory,
    restart: RestartPolicy,
) {
    let mut flat = vec![0.0f32; shared.minibatch * shared.sample_elems];
    let mut session = session;
    let mut weight_gen = 0u64;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_batches(&mut session, &rx, &shared, &mut weight_gen, &mut flat)
        }));
        if outcome.is_ok() {
            return; // channel closed: orderly shutdown
        }
        // the panic unwound the in-flight batch inside serve_batches:
        // its Pendings dropped and poisoned their requests as
        // ReplicaPanic. Only that batch is lost — rebuild and go on.
        shared.counters.replica_panics.fetch_add(1, Ordering::Relaxed);
        let mut attempts = 0usize;
        let mut delay = restart.backoff;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                // teardown (or another thread's terminal failure) won
                // the race — dropping `rx` fails whatever batch is
                // still parked in the channel instead of serving it
                return;
            }
            if attempts >= restart.max_attempts {
                enter_failed_state(&shared);
                return;
            }
            sleep_unless_shutdown(&shared, delay);
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(|| factory.rebuild(&shared))) {
                Ok(Ok((fresh, gen))) => {
                    // assignment drops the crashed session (and its
                    // pool) now that the replacement is live
                    session = fresh;
                    weight_gen = gen;
                    shared.counters.replica_restarts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Ok(Err(_)) | Err(_) => {
                    delay = (delay * 2).min(restart.cap);
                }
            }
        }
    }
}

/// One replica incarnation: execute batches on the owned session and
/// route every sample's result back to its request slot. Returns when
/// the dispatcher closes the channel; panics propagate to
/// [`replica_loop`], which fails the in-flight batch and rebuilds.
///
/// Between batches the replica polls the shared [`HotSwap`] cell (one
/// `Acquire` load); when a new weight generation has been published it
/// loads the dict — refolding the fused-BN weights — before running
/// the batch. The batch that triggered the poll therefore runs
/// entirely on the *new* weights, and the previous batch ran entirely
/// on the old ones: a swap never tears a batch.
fn serve_batches(
    session: &mut InferenceSession,
    rx: &Receiver<Vec<Pending>>,
    shared: &Shared,
    weight_gen: &mut u64,
    flat: &mut [f32],
) {
    let se = shared.sample_elems;
    let classes = shared.classes;
    while let Ok(mut batch) = rx.recv() {
        // from here until delivery, a panic dies with this batch —
        // upgrade the poison before anything fallible runs
        for p in &mut batch {
            p.fail_reason = FailReason::ReplicaPanic;
        }
        fault::point("replica.batch");
        if shared.swap.generation() != *weight_gen {
            let (published, gen) = shared.swap.snapshot();
            if let Some(sd) = published {
                // schema-validated at publish time; a residual
                // load failure keeps the previous weights serving
                if session.load_state_dict(&sd).is_err() {
                    shared.stats.lock().unwrap().reload_failures += 1;
                } else if !shared.calibration.is_empty() {
                    // int8: requantize the fresh weights against the
                    // same measured ranges the replica was built with
                    // (the load itself only sees BN-derived bounds)
                    let n = shared.calibration.len() / se;
                    if session.calibrate(&shared.calibration, n).is_err() {
                        shared.stats.lock().unwrap().reload_failures += 1;
                    }
                }
            }
            *weight_gen = gen;
        }
        let n = batch.len();
        for (i, p) in batch.iter().enumerate() {
            flat[i * se..(i + 1) * se].copy_from_slice(&p.image);
        }
        let out = session
            .run_samples(&flat[..n * se], n)
            .expect("dispatcher batches always fit the planned minibatch");
        let done = Instant::now();
        let mut latencies = Vec::with_capacity(n);
        for (i, mut p) in batch.into_iter().enumerate() {
            let mut g = p.slot.inner.lock().unwrap();
            if g.failed.is_some() {
                // the waiter cancelled (deadline) or a sibling sample
                // already poisoned the request — drop the late result
                // instead of writing into a slot nobody will read
                p.done = true;
                continue;
            }
            g.probs[p.index * classes..(p.index + 1) * classes]
                .copy_from_slice(&out.probs[i * classes..(i + 1) * classes]);
            g.top1[p.index] = out.top1[i];
            g.remaining -= 1;
            p.done = true;
            latencies.push(done.duration_since(p.enqueued).as_micros() as u64);
            if g.remaining == 0 {
                drop(g);
                p.slot.cv.notify_all();
            }
        }
        let mut s = shared.stats.lock().unwrap();
        for us in latencies {
            s.record_latency(us);
        }
    }
}
