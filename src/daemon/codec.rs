//! Transport framing: turning a byte stream into validated
//! [`Frame`]s and back.
//!
//! The reader side is a [`FrameReader`]: an incremental buffer that
//! tolerates partial reads and read timeouts (the daemon's connection
//! threads poll their sockets with a short timeout so they can notice
//! shutdown), validates the header *before* the payload arrives —
//! bad magic, wrong version, non-zero flags, unknown type and
//! oversized declarations are all rejected at byte 16 — and never
//! allocates more than the configured frame cap.

use super::protocol::{Frame, FrameType, HEADER_LEN, MAGIC, VERSION};
use crate::fault;
use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Why a frame could not be read. [`CodecError::Closed`] is a clean
/// end-of-stream between frames; everything else is a protocol or
/// transport failure.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer closed the stream on a frame boundary (clean EOF).
    Closed,
    /// The peer closed the stream mid-frame (header or payload
    /// truncated).
    Truncated,
    /// The first four bytes were not `"ANAT"`.
    BadMagic([u8; 4]),
    /// The header declared a protocol version this build does not
    /// speak.
    BadVersion(u8),
    /// The header's flags word was non-zero (reserved in version 1).
    BadFlags(u16),
    /// The header's type byte is not a known [`FrameType`].
    UnknownType(u8),
    /// The header declared a payload longer than the configured cap.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o: {e}"),
            CodecError::Closed => write!(f, "peer closed the stream"),
            CodecError::Truncated => write!(f, "peer closed the stream mid-frame"),
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            CodecError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {VERSION})")
            }
            CodecError::BadFlags(fl) => write!(f, "non-zero reserved flags {fl:#06x}"),
            CodecError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            CodecError::Oversized { len, max } => {
                write!(f, "declared payload of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Incremental frame reader over any [`Read`] (see the [module
/// docs](self)).
///
/// ```
/// use anatomy::daemon::codec::{write_frame, FrameReader};
/// use anatomy::daemon::protocol::{FrameType, DEFAULT_MAX_FRAME_LEN};
///
/// let mut wire = Vec::new();
/// write_frame(&mut wire, FrameType::Stats, 42, &[0, 0]).unwrap();
///
/// let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_LEN);
/// let frame = reader.poll_frame(&mut wire.as_slice()).unwrap().unwrap();
/// assert_eq!(frame.ty, FrameType::Stats);
/// assert_eq!(frame.id, 42);
/// assert_eq!(frame.payload, vec![0, 0]);
/// ```
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: u32,
}

impl FrameReader {
    /// A reader enforcing `max_frame` as the payload-length cap.
    pub fn new(max_frame: u32) -> Self {
        Self { buf: Vec::new(), max_frame }
    }

    /// Bytes of the *next* frame already buffered (partial header or
    /// payload). Zero exactly when the reader sits on a frame
    /// boundary — the discriminator a retrying client uses between
    /// "the response never started" (safe to retry) and "a response
    /// was partially received" (never retried).
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }

    /// Validate the buffered header and return the declared payload
    /// length.
    fn check_header(&self) -> Result<usize, CodecError> {
        let h = &self.buf[..HEADER_LEN];
        if h[..4] != MAGIC {
            return Err(CodecError::BadMagic([h[0], h[1], h[2], h[3]]));
        }
        if h[4] != VERSION {
            return Err(CodecError::BadVersion(h[4]));
        }
        let flags = u16::from_le_bytes([h[6], h[7]]);
        if flags != 0 {
            return Err(CodecError::BadFlags(flags));
        }
        if FrameType::from_u8(h[5]).is_none() {
            return Err(CodecError::UnknownType(h[5]));
        }
        let len = u32::from_le_bytes([h[12], h[13], h[14], h[15]]);
        if len > self.max_frame {
            return Err(CodecError::Oversized { len, max: self.max_frame });
        }
        Ok(len as usize)
    }

    /// Read from `r` until one whole frame is buffered, the read
    /// would block, or the stream fails.
    ///
    /// Returns `Ok(None)` when `r` hit its read timeout
    /// ([`ErrorKind::WouldBlock`]/[`ErrorKind::TimedOut`]) before a
    /// full frame arrived — call again later; buffered partial bytes
    /// are kept. Interrupted reads are retried internally.
    ///
    /// # Errors
    /// Any [`CodecError`]: header validation failures surface as soon
    /// as the 16 header bytes are in, without waiting for (or
    /// allocating) the declared payload.
    pub fn poll_frame(&mut self, r: &mut impl Read) -> Result<Option<Frame>, CodecError> {
        let mut chunk = [0u8; 4096];
        loop {
            if self.buf.len() >= HEADER_LEN {
                let payload_len = self.check_header()?;
                if self.buf.len() >= HEADER_LEN + payload_len {
                    let ty = FrameType::from_u8(self.buf[5]).expect("validated by check_header");
                    let id = u32::from_le_bytes(self.buf[8..12].try_into().unwrap());
                    let payload = self.buf[HEADER_LEN..HEADER_LEN + payload_len].to_vec();
                    self.buf.drain(..HEADER_LEN + payload_len);
                    return Ok(Some(Frame { ty, id, payload }));
                }
            }
            fault::io_point("codec.read").map_err(CodecError::Io)?;
            match r.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        CodecError::Closed
                    } else {
                        CodecError::Truncated
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) => return Err(CodecError::Io(e)),
            }
        }
    }

    /// [`Self::poll_frame`] for blocking streams: loops until a frame
    /// or an error (a read timeout on the stream still surfaces as
    /// time passing, not `Ok(None)` — only use on sockets without a
    /// read timeout, like the [client](super::client::Client)'s).
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<Frame, CodecError> {
        loop {
            if let Some(frame) = self.poll_frame(r)? {
                return Ok(frame);
            }
        }
    }
}

/// Write one frame (header + payload) to `w` and flush it.
///
/// # Errors
/// Any transport [`std::io::Error`].
pub fn write_frame(
    w: &mut impl Write,
    ty: FrameType,
    id: u32,
    payload: &[u8],
) -> std::io::Result<()> {
    let header = super::protocol::encode_header(ty, id, payload.len() as u32);
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::protocol::DEFAULT_MAX_FRAME_LEN;

    fn roundtrip_one(payload: &[u8]) -> Frame {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Infer, 9, payload).unwrap();
        FrameReader::new(DEFAULT_MAX_FRAME_LEN)
            .poll_frame(&mut wire.as_slice())
            .unwrap()
            .expect("whole frame buffered")
    }

    #[test]
    fn frames_round_trip() {
        let f = roundtrip_one(&[1, 2, 3]);
        assert_eq!((f.ty, f.id), (FrameType::Infer, 9));
        assert_eq!(f.payload, vec![1, 2, 3]);
        assert_eq!(roundtrip_one(&[]).payload, Vec::<u8>::new());
    }

    #[test]
    fn two_frames_in_one_read_are_both_delivered() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Stats, 1, &[0, 0]).unwrap();
        write_frame(&mut wire, FrameType::Stats, 2, &[0, 0]).unwrap();
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_LEN);
        let mut src = wire.as_slice();
        assert_eq!(reader.poll_frame(&mut src).unwrap().unwrap().id, 1);
        // second frame is already buffered: no further source needed
        let mut empty: &[u8] = &[];
        assert_eq!(reader.poll_frame(&mut empty).unwrap().unwrap().id, 2);
    }

    /// A reader that yields its bytes one at a time — the torture
    /// case for incremental header/payload assembly.
    struct TrickleReader<'a>(&'a [u8]);
    impl Read for TrickleReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn byte_at_a_time_reads_still_assemble_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Reload, 7, &[9; 33]).unwrap();
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_LEN);
        let f = reader.poll_frame(&mut TrickleReader(&wire)).unwrap().unwrap();
        assert_eq!(f.payload, vec![9; 33]);
    }

    #[test]
    fn truncated_and_hostile_headers_are_typed_failures() {
        // clean EOF between frames
        let mut empty: &[u8] = &[];
        assert!(matches!(FrameReader::new(64).poll_frame(&mut empty), Err(CodecError::Closed)));
        // EOF mid-header
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Stats, 1, &[0, 0]).unwrap();
        let mut partial = &wire[..7];
        assert!(matches!(
            FrameReader::new(64).poll_frame(&mut partial),
            Err(CodecError::Truncated)
        ));
        // EOF mid-payload
        let mut partial = &wire[..HEADER_LEN + 1];
        assert!(matches!(
            FrameReader::new(64).poll_frame(&mut partial),
            Err(CodecError::Truncated)
        ));
        // bad magic
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert!(matches!(
            FrameReader::new(64).poll_frame(&mut bad.as_slice()),
            Err(CodecError::BadMagic(_))
        ));
        // wrong version
        let mut bad = wire.clone();
        bad[4] = 9;
        assert!(matches!(
            FrameReader::new(64).poll_frame(&mut bad.as_slice()),
            Err(CodecError::BadVersion(9))
        ));
        // reserved flags set
        let mut bad = wire.clone();
        bad[6] = 1;
        assert!(matches!(
            FrameReader::new(64).poll_frame(&mut bad.as_slice()),
            Err(CodecError::BadFlags(1))
        ));
        // unknown type
        let mut bad = wire.clone();
        bad[5] = 200;
        assert!(matches!(
            FrameReader::new(64).poll_frame(&mut bad.as_slice()),
            Err(CodecError::UnknownType(200))
        ));
    }

    #[test]
    fn oversized_declaration_is_rejected_at_the_header() {
        // header declares 1 MiB against a 64-byte cap; no payload
        // bytes are ever supplied — the reject must not wait for them
        let header = crate::daemon::protocol::encode_header(FrameType::Infer, 1, 1 << 20);
        let mut src = &header[..];
        assert!(matches!(
            FrameReader::new(64).poll_frame(&mut src),
            Err(CodecError::Oversized { len, max: 64 }) if len == 1 << 20
        ));
    }

    #[test]
    fn would_block_returns_none_and_keeps_partial_bytes() {
        struct EagainAfter<'a>(&'a [u8]);
        impl Read for EagainAfter<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Err(std::io::Error::new(ErrorKind::WouldBlock, "eagain"));
                }
                let n = self.0.len().min(buf.len()).min(5);
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Stats, 3, &[0, 0]).unwrap();
        let mut reader = FrameReader::new(64);
        // first source: only half the frame, then EAGAIN
        let half = wire.len() / 2;
        assert!(reader.poll_frame(&mut EagainAfter(&wire[..half])).unwrap().is_none());
        assert_eq!(reader.buffered_len(), half);
        // second source: the rest — the buffered half must be reused
        let f = reader.poll_frame(&mut EagainAfter(&wire[half..])).unwrap().unwrap();
        assert_eq!(f.id, 3);
        assert_eq!(reader.buffered_len(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Parse everything a byte stream yields in one-shot slice
        /// delivery: the frames in order, then the terminal error.
        fn parse_all(mut src: &[u8], cap: u32) -> (Vec<Frame>, CodecError) {
            let mut reader = FrameReader::new(cap);
            let mut frames = Vec::new();
            loop {
                match reader.poll_frame(&mut src) {
                    Ok(Some(f)) => frames.push(f),
                    // a finite slice always terminates in Closed /
                    // Truncated once drained — Ok(None) is impossible
                    Ok(None) => unreachable!("slice readers never block"),
                    Err(e) => return (frames, e),
                }
            }
        }

        /// A reader delivering its bytes in caller-chosen chunk sizes,
        /// with a `WouldBlock` between chunks (the shape of a socket
        /// under load).
        struct Chunked<'a> {
            data: &'a [u8],
            sizes: Vec<usize>,
            next: usize,
            block: bool,
        }

        impl Read for Chunked<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.block {
                    self.block = false;
                    return Err(std::io::Error::new(ErrorKind::WouldBlock, "eagain"));
                }
                self.block = true;
                if self.data.is_empty() {
                    return Ok(0);
                }
                let want = self.sizes[self.next % self.sizes.len()].clamp(1, buf.len());
                self.next += 1;
                let n = want.min(self.data.len());
                buf[..n].copy_from_slice(&self.data[..n]);
                self.data = &self.data[n..];
                Ok(n)
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            /// Hostile input: arbitrary bytes (sometimes seeded with a
            /// valid-looking prefix) never panic the reader — every
            /// outcome is a validated frame or a typed error, and no
            /// delivered payload exceeds the cap.
            #[test]
            fn arbitrary_streams_never_panic(
                bytes in prop::collection::vec(0u8..=255u8, 96),
                len in 0usize..=96,
                cap in 0u32..128,
                magic_prefix in any::<bool>(),
            ) {
                let mut stream = bytes[..len].to_vec();
                if magic_prefix {
                    // steer half the cases past the magic check so the
                    // deeper header/payload validation gets exercised
                    for (i, b) in MAGIC.iter().enumerate() {
                        if stream.len() > i {
                            stream[i] = *b;
                        }
                    }
                }
                let (frames, terminal) = parse_all(&stream, cap);
                for f in &frames {
                    prop_assert!(f.payload.len() <= cap as usize);
                }
                prop_assert!(matches!(
                    terminal,
                    CodecError::Closed
                        | CodecError::Truncated
                        | CodecError::BadMagic(_)
                        | CodecError::BadVersion(_)
                        | CodecError::BadFlags(_)
                        | CodecError::UnknownType(_)
                        | CodecError::Oversized { .. }
                ));
            }

            /// Valid frames split at arbitrary chunk boundaries (with
            /// interleaved would-blocks) parse identically to one-shot
            /// delivery.
            #[test]
            fn chunked_delivery_matches_one_shot(
                payload in prop::collection::vec(0u8..=255u8, 48),
                plen in 0usize..=48,
                nframes in 1usize..4,
                sizes in prop::collection::vec(1usize..24, 5),
            ) {
                let mut wire = Vec::new();
                for i in 0..nframes {
                    write_frame(
                        &mut wire,
                        FrameType::Infer,
                        i as u32 + 1,
                        &payload[..plen],
                    ).unwrap();
                }
                let (reference, terminal) = parse_all(&wire, DEFAULT_MAX_FRAME_LEN);
                prop_assert_eq!(reference.len(), nframes);
                prop_assert!(matches!(terminal, CodecError::Closed));

                let mut chunked =
                    Chunked { data: &wire, sizes: sizes.clone(), next: 0, block: false };
                let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_LEN);
                let mut got = Vec::new();
                loop {
                    match reader.poll_frame(&mut chunked) {
                        Ok(Some(f)) => got.push(f),
                        Ok(None) => {} // WouldBlock between chunks
                        Err(CodecError::Closed) => break,
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                prop_assert_eq!(got.len(), reference.len());
                for (a, b) in got.iter().zip(reference.iter()) {
                    prop_assert_eq!(a.ty, b.ty);
                    prop_assert_eq!(a.id, b.id);
                    prop_assert_eq!(&a.payload, &b.payload);
                }
            }
        }
    }
}
