//! A blocking client for the `anatomy-serve` wire protocol.
//!
//! [`Client`] speaks the length-prefixed binary protocol of
//! `docs/PROTOCOL.md` over one TCP connection: version negotiation on
//! connect, then any sequence of inference, stats and reload round
//! trips. Server-side failures come back as the same typed
//! [`Error`]s the in-process serving API uses — a load-shed request
//! is an [`Error::Busy`] whether it was shed in-process or over the
//! wire.
//!
//! ## Bounded waits and retry
//!
//! [`Client::connect_with`] takes a [`ClientConfig`] carrying
//! connect/read/write timeouts (an expired read deadline surfaces as
//! [`Error::Timeout`]) and an opt-in [`RetryPolicy`] with jittered
//! exponential backoff. The policy is deliberately conservative about
//! *what* it retries:
//!
//! * [`Error::Busy`] — always retryable (the server sheds with
//!   backpressure intent);
//! * connect failures and **pre-response** transport errors (the
//!   write failed, or the connection died before a single response
//!   byte arrived) — retryable, over a fresh connection;
//! * anything after a partial response — **never** retried: the
//!   request may have executed, and the stream is desynchronized;
//! * [`Error::Timeout`] — never retried: the server may still be
//!   working, and re-sending piles on;
//! * server-side `Internal` failures (e.g. the request's batch died
//!   with a panicking replica) — retried only when
//!   [`RetryPolicy::retry_server_failures`] is set, and only for
//!   idempotent inference/stats requests.
//!
//! After any transport-level failure the connection is **poisoned**:
//! the next request transparently reconnects and re-negotiates before
//! sending.

use super::codec::{write_frame, CodecError, FrameReader};
use super::protocol::{
    encode_hello, encode_infer, encode_reload, encode_stats, parse_error, parse_hello_ok,
    parse_infer_ok, parse_reload_ok, parse_stats_ok, ErrorCode, Frame, FrameType,
    DEFAULT_MAX_FRAME_LEN, VERSION,
};
use crate::{Error, InferenceOutput, StateDict};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Socket-level read timeout slice: the blocking read wakes at this
/// cadence so an overall read deadline is enforced precisely even
/// against a peer trickling bytes.
const READ_POLL_SLICE: Duration = Duration::from_millis(50);

/// Opt-in request retry with deterministic jittered exponential
/// backoff (see the [module docs](self) for exactly what is and is
/// not retried).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (≥ 1).
    pub max_attempts: usize,
    /// Backoff before the second attempt; doubles per subsequent
    /// attempt up to [`RetryPolicy::max_delay`].
    pub base_delay: Duration,
    /// Upper bound of the exponential backoff.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter stream — two clients given
    /// different seeds desynchronize their retry storms; the same
    /// seed reproduces the exact backoff schedule (see
    /// [`RetryPolicy::backoff_schedule`]).
    pub jitter_seed: u64,
    /// Also retry server-side `Internal` failures (a request whose
    /// batch died with a panicking replica). Off by default: it is
    /// only sound for idempotent requests, and reloads never use it.
    pub retry_server_failures: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0x5eed,
            retry_server_failures: false,
        }
    }
}

impl RetryPolicy {
    /// Enable [`RetryPolicy::retry_server_failures`].
    pub fn with_server_failure_retry(mut self) -> Self {
        self.retry_server_failures = true;
        self
    }

    /// The deterministic backoff schedule this policy produces: the
    /// delay before retry 1, 2, … `retries`. Each delay is the
    /// exponential base (doubling from [`RetryPolicy::base_delay`],
    /// capped at [`RetryPolicy::max_delay`]) scaled by a jitter in
    /// `[0.5, 1.0)` drawn from the seeded stream.
    ///
    /// ```
    /// use anatomy::daemon::RetryPolicy;
    ///
    /// let p = RetryPolicy::default();
    /// let a = p.backoff_schedule(3);
    /// assert_eq!(a, p.backoff_schedule(3), "same seed, same schedule");
    /// for (i, d) in a.iter().enumerate() {
    ///     assert!(*d <= p.max_delay);
    ///     assert!(*d >= p.base_delay * (1 << i.min(6)) / 2);
    /// }
    /// ```
    pub fn backoff_schedule(&self, retries: usize) -> Vec<Duration> {
        let mut rng = self.jitter_seed | 1;
        let mut delay = self.base_delay;
        (0..retries)
            .map(|_| {
                let d = jittered(delay, &mut rng);
                delay = (delay * 2).min(self.max_delay);
                d
            })
            .collect()
    }
}

/// Scale `delay` by a jitter factor in `[0.5, 1.0)` drawn from the
/// xorshift stream `rng`.
fn jittered(delay: Duration, rng: &mut u64) -> Duration {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    let frac = 0.5 + 0.5 * ((x >> 11) as f64 / (1u64 << 53) as f64);
    delay.mul_f64(frac)
}

/// Connection behavior of a [`Client`] (see the [module docs](self)).
///
/// The default has no timeouts and no retry — byte-compatible with
/// the historical blocking client. Production callers should bound at
/// least the read side:
///
/// ```
/// use anatomy::daemon::{ClientConfig, RetryPolicy};
/// use std::time::Duration;
///
/// let cfg = ClientConfig::new()
///     .with_timeouts(Duration::from_secs(5))
///     .with_retry(RetryPolicy::default());
/// assert_eq!(cfg.read_timeout, Some(Duration::from_secs(5)));
/// assert!(cfg.retry.is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection (per address tried).
    pub connect_timeout: Option<Duration>,
    /// Overall bound on reading one response frame; expiry returns
    /// [`Error::Timeout`] and poisons the connection (the late
    /// response can no longer be matched to a request).
    pub read_timeout: Option<Duration>,
    /// Socket-level bound on blocking writes.
    pub write_timeout: Option<Duration>,
    /// Opt-in retry; `None` fails every request on its first error.
    pub retry: Option<RetryPolicy>,
}

impl ClientConfig {
    /// The default config: no timeouts, no retry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the TCP connect.
    pub fn with_connect_timeout(mut self, t: Duration) -> Self {
        self.connect_timeout = Some(t);
        self
    }

    /// Bound each response read (see [`ClientConfig::read_timeout`]).
    pub fn with_read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = Some(t);
        self
    }

    /// Bound blocking writes.
    pub fn with_write_timeout(mut self, t: Duration) -> Self {
        self.write_timeout = Some(t);
        self
    }

    /// Apply one bound to connect, read and write alike.
    pub fn with_timeouts(self, t: Duration) -> Self {
        self.with_connect_timeout(t).with_read_timeout(t).with_write_timeout(t)
    }

    /// Enable retry under `policy`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }
}

/// Geometry of one hosted model, as discovered from the stats frame
/// (see [`Client::models`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelInfo {
    /// The routing key for [`Client::infer`].
    pub name: String,
    /// `c × h × w` f32 values per sample the model expects.
    pub sample_elems: usize,
    /// Classes in the model's softmax head.
    pub classes: usize,
}

/// How an attempt failed, for the retry decision.
enum Retryability {
    /// Busy / connect / pre-response transport failure: retryable
    /// under any [`RetryPolicy`].
    Transport,
    /// A complete, typed server-side `Internal` failure: retryable
    /// only under [`RetryPolicy::retry_server_failures`].
    ServerFailure,
    /// Never retried (typed request rejections, timeouts, partial
    /// responses, protocol desync).
    No,
}

/// A connected protocol-v1 client (see the [module docs](self)).
///
/// ```
/// use anatomy::daemon::{Client, Daemon, DaemonConfig, ModelConfig};
/// use anatomy::serve::ServeConfig;
/// use anatomy::{ConvOpts, GraphBuilder};
/// use std::time::Duration;
///
/// let model = GraphBuilder::new()
///     .input("data", 3, 8, 8)
///     .conv("c1", ConvOpts::k(8).rs(3).pad(1).bias().relu())
///     .gap("g")
///     .fc("logits", 4)
///     .softmax("loss")
///     .build()
///     .unwrap();
/// let serve = ServeConfig::new(1, 1, 2).with_max_wait(Duration::from_millis(1));
/// let daemon = Daemon::bind(
///     DaemonConfig::loopback(),
///     vec![ModelConfig::new("tiny", &model, serve).unwrap()],
/// )
/// .unwrap();
///
/// let mut client = Client::connect(daemon.local_addr()).unwrap();
/// let models = client.models().unwrap();
/// assert_eq!(models[0].name, "tiny");
///
/// let image = vec![0.5f32; models[0].sample_elems];
/// let out = client.infer("tiny", 1, &image).unwrap();
/// assert_eq!(out.top1.len(), 1);
/// assert_eq!(out.probs.len(), models[0].classes);
///
/// // unknown models are typed errors, not hangs
/// assert!(client.infer("nope", 1, &image).is_err());
/// daemon.shutdown();
/// ```
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u32,
    server_version: u8,
    banner: String,
    config: ClientConfig,
    /// The resolved peer addresses, kept for reconnection.
    addrs: Vec<SocketAddr>,
    /// Set after any transport-level failure: the stream may be
    /// desynchronized, so the next request reconnects first.
    poisoned: bool,
}

impl Client {
    /// Connect with the default [`ClientConfig`] (no timeouts, no
    /// retry) and negotiate: sends a [`Hello`](FrameType::Hello)
    /// offering exactly protocol version 1 and waits for the server's
    /// [`HelloOk`](FrameType::HelloOk).
    ///
    /// # Errors
    /// [`Error::Io`] on connect/transport failures; [`Error::Serve`]
    /// when negotiation fails (e.g. the server answered with a
    /// version-mismatch error frame).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, Error> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`Self::connect`] under an explicit [`ClientConfig`]:
    /// connect/read/write timeouts and optional retry.
    ///
    /// # Errors
    /// As [`Self::connect`], plus [`Error::Timeout`] when the
    /// negotiation response exceeds the configured read timeout.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, Error> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(Error::BadInput("address resolved to no socket addresses".to_string()));
        }
        let stream = open_stream(&addrs, &config)?;
        let mut client = Self {
            stream,
            reader: FrameReader::new(DEFAULT_MAX_FRAME_LEN),
            next_id: 1,
            server_version: 0,
            banner: String::new(),
            config,
            addrs,
            poisoned: false,
        };
        client.handshake()?;
        Ok(client)
    }

    /// The protocol version the server chose during negotiation.
    pub fn server_version(&self) -> u8 {
        self.server_version
    }

    /// The server's banner string (name/version).
    pub fn server_banner(&self) -> &str {
        &self.banner
    }

    /// Run `count` samples (`count × sample_elems` f32s, NCHW) on the
    /// named model and return its predictions.
    ///
    /// # Errors
    /// [`Error::Busy`] when the model's queue shed the request;
    /// [`Error::BadInput`] for unknown models or wrong payload sizes
    /// (as reported by the server); [`Error::Timeout`] when a
    /// configured read deadline expired; [`Error::Io`]/[`Error::Serve`]
    /// on transport or protocol failures. Under a [`RetryPolicy`],
    /// what surfaces is the *last* attempt's error.
    pub fn infer(
        &mut self,
        model: &str,
        count: u32,
        samples: &[f32],
    ) -> Result<InferenceOutput, Error> {
        let payload = encode_infer(model, count, samples);
        let reply = self.request(FrameType::Infer, &payload, FrameType::InferOk, true)?;
        let (top1, probs) = parse_infer_ok(&reply)?;
        Ok(InferenceOutput { probs, top1 })
    }

    /// Fetch the scrapeable stats text (`model = None` for the full
    /// snapshot including daemon-level counters).
    ///
    /// # Errors
    /// [`Error::BadInput`] when `model` names an unhosted model;
    /// transport/protocol failures as in [`Self::infer`].
    pub fn stats(&mut self, model: Option<&str>) -> Result<String, Error> {
        let payload = encode_stats(model.unwrap_or(""));
        let reply = self.request(FrameType::Stats, &payload, FrameType::StatsOk, true)?;
        parse_stats_ok(&reply)
    }

    /// Discover the hosted models and their geometry by parsing the
    /// `serve_model_sample_elems` / `serve_model_classes` lines of
    /// the stats text.
    ///
    /// # Errors
    /// As [`Self::stats`].
    pub fn models(&mut self) -> Result<Vec<ModelInfo>, Error> {
        let text = self.stats(None)?;
        let field = |line: &str, key: &str| -> Option<(String, usize)> {
            let rest = line.strip_prefix(key)?.strip_prefix("{model=\"")?;
            let (name, rest) = rest.split_once("\"}")?;
            Some((name.to_string(), rest.trim().parse().ok()?))
        };
        let mut infos: Vec<ModelInfo> = Vec::new();
        for line in text.lines() {
            if let Some((name, elems)) = field(line, "serve_model_sample_elems") {
                infos.push(ModelInfo { name, sample_elems: elems, classes: 0 });
            } else if let Some((name, classes)) = field(line, "serve_model_classes") {
                if let Some(info) = infos.iter_mut().find(|i| i.name == name) {
                    info.classes = classes;
                }
            }
        }
        Ok(infos)
    }

    /// Hot-swap the named model's weights and return the new weight
    /// generation (see `docs/PROTOCOL.md` §Reload).
    ///
    /// Under a [`RetryPolicy`], reloads retry only connect and
    /// pre-response transport failures —
    /// [`RetryPolicy::retry_server_failures`] never applies here.
    ///
    /// # Errors
    /// [`Error::StateDict`] when the server rejected the dict;
    /// [`Error::BadInput`] for unknown models; transport/protocol
    /// failures as in [`Self::infer`].
    pub fn reload(&mut self, model: &str, weights: &StateDict) -> Result<u64, Error> {
        let payload = encode_reload(model, &weights.to_bytes());
        let reply = self.request(FrameType::Reload, &payload, FrameType::ReloadOk, false)?;
        parse_reload_ok(&reply)
    }

    /// Negotiate versions on a fresh stream.
    fn handshake(&mut self) -> Result<(), Error> {
        let hello = encode_hello(VERSION, VERSION, "anatomy");
        let reply = self.attempt_round_trip(FrameType::Hello, &hello).map_err(|(e, _)| e)?;
        let payload = match expect_type(reply, FrameType::HelloOk) {
            Ok(p) => p,
            Err((e, _)) => return Err(e),
        };
        let (version, banner) = parse_hello_ok(&payload)?;
        self.server_version = version;
        self.banner = banner;
        Ok(())
    }

    /// Tear down the poisoned stream and establish + negotiate a
    /// fresh one. On failure the client stays poisoned.
    fn reconnect(&mut self) -> Result<(), Error> {
        self.stream = open_stream(&self.addrs, &self.config)?;
        self.reader = FrameReader::new(DEFAULT_MAX_FRAME_LEN);
        self.handshake()?;
        self.poisoned = false;
        Ok(())
    }

    /// One full request: send, read the typed response, with retry
    /// per the configured policy. `allow_server_retry` marks the
    /// request idempotent enough to re-send after a *complete* typed
    /// `Internal` failure (inference/stats yes, reload no).
    fn request(
        &mut self,
        ty: FrameType,
        payload: &[u8],
        want: FrameType,
        allow_server_retry: bool,
    ) -> Result<Vec<u8>, Error> {
        let policy = self.config.retry.clone();
        let (max_attempts, mut rng, mut delay) = match &policy {
            Some(p) => (p.max_attempts.max(1), p.jitter_seed | 1, p.base_delay),
            None => (1, 1, Duration::ZERO),
        };
        let mut attempt = 0usize;
        loop {
            attempt += 1;
            let (err, why) = match self.attempt(ty, payload, want) {
                Ok(reply) => return Ok(reply),
                Err(e) => e,
            };
            let retryable = match why {
                Retryability::Transport => true,
                Retryability::ServerFailure => {
                    allow_server_retry && policy.as_ref().is_some_and(|p| p.retry_server_failures)
                }
                Retryability::No => false,
            };
            if !retryable || attempt >= max_attempts {
                return Err(err);
            }
            let p = policy.as_ref().expect("max_attempts > 1 implies a policy");
            std::thread::sleep(jittered(delay, &mut rng));
            delay = (delay * 2).min(p.max_delay);
        }
    }

    /// One attempt: reconnect if poisoned, send, read, type-check.
    fn attempt(
        &mut self,
        ty: FrameType,
        payload: &[u8],
        want: FrameType,
    ) -> Result<Vec<u8>, (Error, Retryability)> {
        if self.poisoned {
            // connect-class failure: retryable, still poisoned
            self.reconnect().map_err(|e| (e, Retryability::Transport))?;
        }
        let frame = self.attempt_round_trip(ty, payload)?;
        expect_type(frame, want)
    }

    /// Send one request frame and read the matching response frame,
    /// classifying every transport failure for the retry decision and
    /// poisoning the connection on all of them.
    fn attempt_round_trip(
        &mut self,
        ty: FrameType,
        payload: &[u8],
    ) -> Result<Frame, (Error, Retryability)> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        if let Err(e) = write_frame(&mut self.stream, ty, id, payload) {
            // the request may be partially written — poison; but no
            // response byte exists, so a retry is safe
            self.poisoned = true;
            return Err((Error::Io(e), Retryability::Transport));
        }
        let frame = self.read_reply().map_err(|e| {
            self.poisoned = true;
            let pre_response = self.reader.buffered_len() == 0;
            match e {
                ReadError::Timeout(waited) => {
                    // the server may still answer later; never retried
                    (Error::Timeout { waited }, Retryability::No)
                }
                ReadError::Codec(CodecError::Io(io)) => (
                    Error::Io(io),
                    if pre_response { Retryability::Transport } else { Retryability::No },
                ),
                ReadError::Codec(CodecError::Closed) => (
                    Error::Serve("server closed the connection before answering".to_string()),
                    Retryability::Transport,
                ),
                ReadError::Codec(other) => {
                    (Error::Serve(format!("protocol failure: {other}")), Retryability::No)
                }
            }
        })?;
        if frame.id != id {
            self.poisoned = true;
            return Err((
                Error::Serve(format!("response id {} does not match request id {id}", frame.id)),
                Retryability::No,
            ));
        }
        Ok(frame)
    }

    /// Read one frame, enforcing [`ClientConfig::read_timeout`] as an
    /// overall deadline (the socket wakes every [`READ_POLL_SLICE`]).
    fn read_reply(&mut self) -> Result<Frame, ReadError> {
        match self.config.read_timeout {
            None => self.reader.read_frame(&mut self.stream).map_err(ReadError::Codec),
            Some(limit) => {
                let start = Instant::now();
                let deadline = start + limit;
                loop {
                    match self.reader.poll_frame(&mut self.stream) {
                        Ok(Some(frame)) => return Ok(frame),
                        Ok(None) => {
                            if Instant::now() >= deadline {
                                return Err(ReadError::Timeout(start.elapsed()));
                            }
                        }
                        Err(e) => return Err(ReadError::Codec(e)),
                    }
                }
            }
        }
    }
}

/// Internal read-side failure: codec/transport, or the overall read
/// deadline expired after the carried wait.
enum ReadError {
    Codec(CodecError),
    Timeout(Duration),
}

/// Connect to the first reachable address under the config's connect
/// timeout, and arm the socket's read/write timeouts.
fn open_stream(addrs: &[SocketAddr], config: &ClientConfig) -> Result<TcpStream, Error> {
    let mut last: Option<std::io::Error> = None;
    for addr in addrs {
        let attempt = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                // slice the read timeout so `read_reply` can enforce
                // its overall deadline even against trickled bytes
                let read = config.read_timeout.map(|t| t.min(READ_POLL_SLICE));
                stream.set_read_timeout(read)?;
                stream.set_write_timeout(config.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(Error::Io(last.expect("addrs is non-empty")))
}

/// Unwrap a response frame of the expected type, converting
/// [`FrameType::Error`] frames into the typed [`Error`] they carry
/// and classifying each for the retry decision.
fn expect_type(frame: Frame, want: FrameType) -> Result<Vec<u8>, (Error, Retryability)> {
    if frame.ty == want {
        return Ok(frame.payload);
    }
    if frame.ty == FrameType::Error {
        let (code, a, b, msg) = match parse_error(&frame.payload) {
            Ok(parts) => parts,
            Err(e) => return Err((e, Retryability::No)),
        };
        return Err(match code {
            ErrorCode::Busy => {
                (Error::Busy { queued: a as usize, capacity: b as usize }, Retryability::Transport)
            }
            ErrorCode::UnknownModel | ErrorCode::BadRequest => {
                (Error::BadInput(msg), Retryability::No)
            }
            ErrorCode::StateDict => (Error::StateDict(msg), Retryability::No),
            ErrorCode::Internal => {
                (Error::Serve(format!("{code}: {msg}")), Retryability::ServerFailure)
            }
            ErrorCode::BadFrame | ErrorCode::VersionMismatch => {
                (Error::Serve(format!("{code}: {msg}")), Retryability::No)
            }
        });
    }
    Err((Error::Serve(format!("expected a {want:?} frame, got {:?}", frame.ty)), Retryability::No))
}
