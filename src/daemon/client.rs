//! A blocking client for the `anatomy-serve` wire protocol.
//!
//! [`Client`] speaks the length-prefixed binary protocol of
//! `docs/PROTOCOL.md` over one TCP connection: version negotiation on
//! connect, then any sequence of inference, stats and reload round
//! trips. Server-side failures come back as the same typed
//! [`Error`]s the in-process serving API uses — a load-shed request
//! is an [`Error::Busy`] whether it was shed in-process or over the
//! wire.

use super::codec::{write_frame, CodecError, FrameReader};
use super::protocol::{
    encode_hello, encode_infer, encode_reload, encode_stats, parse_error, parse_hello_ok,
    parse_infer_ok, parse_reload_ok, parse_stats_ok, ErrorCode, Frame, FrameType,
    DEFAULT_MAX_FRAME_LEN, VERSION,
};
use crate::{Error, InferenceOutput, StateDict};
use std::net::{TcpStream, ToSocketAddrs};

/// Geometry of one hosted model, as discovered from the stats frame
/// (see [`Client::models`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelInfo {
    /// The routing key for [`Client::infer`].
    pub name: String,
    /// `c × h × w` f32 values per sample the model expects.
    pub sample_elems: usize,
    /// Classes in the model's softmax head.
    pub classes: usize,
}

/// A connected protocol-v1 client (see the [module docs](self)).
///
/// ```
/// use anatomy::daemon::{Client, Daemon, DaemonConfig, ModelConfig};
/// use anatomy::serve::ServeConfig;
/// use anatomy::{ConvOpts, GraphBuilder};
/// use std::time::Duration;
///
/// let model = GraphBuilder::new()
///     .input("data", 3, 8, 8)
///     .conv("c1", ConvOpts::k(8).rs(3).pad(1).bias().relu())
///     .gap("g")
///     .fc("logits", 4)
///     .softmax("loss")
///     .build()
///     .unwrap();
/// let serve = ServeConfig::new(1, 1, 2).with_max_wait(Duration::from_millis(1));
/// let daemon = Daemon::bind(
///     DaemonConfig::loopback(),
///     vec![ModelConfig::new("tiny", &model, serve).unwrap()],
/// )
/// .unwrap();
///
/// let mut client = Client::connect(daemon.local_addr()).unwrap();
/// let models = client.models().unwrap();
/// assert_eq!(models[0].name, "tiny");
///
/// let image = vec![0.5f32; models[0].sample_elems];
/// let out = client.infer("tiny", 1, &image).unwrap();
/// assert_eq!(out.top1.len(), 1);
/// assert_eq!(out.probs.len(), models[0].classes);
///
/// // unknown models are typed errors, not hangs
/// assert!(client.infer("nope", 1, &image).is_err());
/// daemon.shutdown();
/// ```
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u32,
    server_version: u8,
    banner: String,
}

impl Client {
    /// Connect and negotiate: sends a
    /// [`Hello`](FrameType::Hello) offering exactly protocol version
    /// 1 and waits for the server's
    /// [`HelloOk`](FrameType::HelloOk).
    ///
    /// # Errors
    /// [`Error::Io`] on connect/transport failures; [`Error::Serve`]
    /// when negotiation fails (e.g. the server answered with a
    /// version-mismatch error frame).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, Error> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Self {
            stream,
            reader: FrameReader::new(DEFAULT_MAX_FRAME_LEN),
            next_id: 1,
            server_version: 0,
            banner: String::new(),
        };
        let reply =
            client.round_trip(FrameType::Hello, &encode_hello(VERSION, VERSION, "anatomy"))?;
        let payload = expect_type(reply, FrameType::HelloOk)?;
        let (version, banner) = parse_hello_ok(&payload)?;
        client.server_version = version;
        client.banner = banner;
        Ok(client)
    }

    /// The protocol version the server chose during negotiation.
    pub fn server_version(&self) -> u8 {
        self.server_version
    }

    /// The server's banner string (name/version).
    pub fn server_banner(&self) -> &str {
        &self.banner
    }

    /// Run `count` samples (`count × sample_elems` f32s, NCHW) on the
    /// named model and return its predictions.
    ///
    /// # Errors
    /// [`Error::Busy`] when the model's queue shed the request;
    /// [`Error::BadInput`] for unknown models or wrong payload sizes
    /// (as reported by the server); [`Error::Io`]/[`Error::Serve`]
    /// on transport or protocol failures.
    pub fn infer(
        &mut self,
        model: &str,
        count: u32,
        samples: &[f32],
    ) -> Result<InferenceOutput, Error> {
        let reply = self.round_trip(FrameType::Infer, &encode_infer(model, count, samples))?;
        let payload = expect_type(reply, FrameType::InferOk)?;
        let (top1, probs) = parse_infer_ok(&payload)?;
        Ok(InferenceOutput { probs, top1 })
    }

    /// Fetch the scrapeable stats text (`model = None` for the full
    /// snapshot including daemon-level counters).
    ///
    /// # Errors
    /// [`Error::BadInput`] when `model` names an unhosted model;
    /// transport/protocol failures as in [`Self::infer`].
    pub fn stats(&mut self, model: Option<&str>) -> Result<String, Error> {
        let reply = self.round_trip(FrameType::Stats, &encode_stats(model.unwrap_or("")))?;
        let payload = expect_type(reply, FrameType::StatsOk)?;
        parse_stats_ok(&payload)
    }

    /// Discover the hosted models and their geometry by parsing the
    /// `serve_model_sample_elems` / `serve_model_classes` lines of
    /// the stats text.
    ///
    /// # Errors
    /// As [`Self::stats`].
    pub fn models(&mut self) -> Result<Vec<ModelInfo>, Error> {
        let text = self.stats(None)?;
        let field = |line: &str, key: &str| -> Option<(String, usize)> {
            let rest = line.strip_prefix(key)?.strip_prefix("{model=\"")?;
            let (name, rest) = rest.split_once("\"}")?;
            Some((name.to_string(), rest.trim().parse().ok()?))
        };
        let mut infos: Vec<ModelInfo> = Vec::new();
        for line in text.lines() {
            if let Some((name, elems)) = field(line, "serve_model_sample_elems") {
                infos.push(ModelInfo { name, sample_elems: elems, classes: 0 });
            } else if let Some((name, classes)) = field(line, "serve_model_classes") {
                if let Some(info) = infos.iter_mut().find(|i| i.name == name) {
                    info.classes = classes;
                }
            }
        }
        Ok(infos)
    }

    /// Hot-swap the named model's weights and return the new weight
    /// generation (see `docs/PROTOCOL.md` §Reload).
    ///
    /// # Errors
    /// [`Error::StateDict`] when the server rejected the dict;
    /// [`Error::BadInput`] for unknown models; transport/protocol
    /// failures as in [`Self::infer`].
    pub fn reload(&mut self, model: &str, weights: &StateDict) -> Result<u64, Error> {
        let reply =
            self.round_trip(FrameType::Reload, &encode_reload(model, &weights.to_bytes()))?;
        let payload = expect_type(reply, FrameType::ReloadOk)?;
        parse_reload_ok(&payload)
    }

    /// Send one request frame and read the matching response frame.
    fn round_trip(&mut self, ty: FrameType, payload: &[u8]) -> Result<Frame, Error> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        write_frame(&mut self.stream, ty, id, payload)?;
        let frame = self.reader.read_frame(&mut self.stream).map_err(|e| match e {
            CodecError::Io(io) => Error::Io(io),
            other => Error::Serve(format!("protocol failure: {other}")),
        })?;
        if frame.id != id {
            return Err(Error::Serve(format!(
                "response id {} does not match request id {id}",
                frame.id
            )));
        }
        Ok(frame)
    }
}

/// Unwrap a response frame of the expected type, converting
/// [`FrameType::Error`] frames into the typed [`Error`] they carry.
fn expect_type(frame: Frame, want: FrameType) -> Result<Vec<u8>, Error> {
    if frame.ty == want {
        return Ok(frame.payload);
    }
    if frame.ty == FrameType::Error {
        let (code, a, b, msg) = parse_error(&frame.payload)?;
        return Err(match code {
            ErrorCode::Busy => Error::Busy { queued: a as usize, capacity: b as usize },
            ErrorCode::UnknownModel | ErrorCode::BadRequest => Error::BadInput(msg),
            ErrorCode::StateDict => Error::StateDict(msg),
            ErrorCode::BadFrame | ErrorCode::VersionMismatch | ErrorCode::Internal => {
                Error::Serve(format!("{code}: {msg}"))
            }
        });
    }
    Err(Error::Serve(format!("expected a {want:?} frame, got {:?}", frame.ty)))
}
