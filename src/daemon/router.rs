//! Per-connection request routing: decode frames, dispatch to the
//! [`ModelRegistry`](super::ModelRegistry), write responses.
//!
//! Connection threads poll their socket with a short read timeout so
//! they notice daemon shutdown, answer request-level failures (bad
//! request, unknown model, busy, state-dict mismatch) with an
//! [`Error` frame](super::protocol::FrameType::Error) on a healthy
//! connection, and close the connection after *framing*-level
//! failures (bad magic/version/flags/length, unknown frame type) —
//! once framing has desynchronized, nothing later on the stream can
//! be trusted.

use super::codec::{write_frame, CodecError, FrameReader};
use super::protocol::{
    encode_error, encode_hello_ok, encode_infer_ok, encode_reload_ok, encode_stats_ok, parse_hello,
    parse_infer, parse_reload, parse_stats, ErrorCode, Frame, FrameType, VERSION,
};
use super::registry::ModelRegistry;
use crate::{fault, Error, StateDict};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How long a connection thread blocks in `read` before re-checking
/// the daemon's shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// What to do with the connection after handling one frame.
enum After {
    KeepOpen,
    Close,
}

/// Serve one accepted connection until the peer closes it, a framing
/// error desynchronizes it, or the daemon shuts down.
pub(crate) fn serve_connection(
    mut stream: TcpStream,
    registry: &ModelRegistry,
    shutdown: &AtomicBool,
    max_frame: u32,
) {
    // best-effort socket setup; serving still works without it
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new(max_frame);
    while !shutdown.load(Ordering::Acquire) {
        let frame = match reader.poll_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // read timed out — loop to re-check the shutdown flag
            Ok(None) => continue,
            // clean close, or the peer vanished mid-frame: nothing to
            // answer either way
            Err(CodecError::Closed) | Err(CodecError::Truncated) | Err(CodecError::Io(_)) => {
                return;
            }
            // framing-level rejection: best-effort error frame (frame
            // id unknowable — 0), then close
            Err(e) => {
                registry.counters().wire_errors.fetch_add(1, Ordering::Relaxed);
                let code = match e {
                    CodecError::BadVersion(_) => ErrorCode::VersionMismatch,
                    _ => ErrorCode::BadFrame,
                };
                let _ = write_frame(
                    &mut stream,
                    FrameType::Error,
                    0,
                    &encode_error(code, 0, 0, &e.to_string()),
                );
                return;
            }
        };
        registry.counters().frames.fetch_add(1, Ordering::Relaxed);
        // chaos site: a panic here kills this connection thread (the
        // daemon reaps it; the peer sees a closed connection), a delay
        // stalls only this connection
        fault::point("router.frame");
        match handle_frame(&mut stream, &frame, registry) {
            Ok(After::KeepOpen) => {}
            Ok(After::Close) => return,
            // response write failed: the peer is gone
            Err(_) => return,
        }
    }
}

/// Dispatch one decoded frame and write its response.
fn handle_frame<W: Write>(
    stream: &mut W,
    frame: &Frame,
    registry: &ModelRegistry,
) -> std::io::Result<After> {
    let id = frame.id;
    let reply_error = |stream: &mut W, code: ErrorCode, a: u32, b: u32, msg: &str| {
        registry.counters().wire_errors.fetch_add(1, Ordering::Relaxed);
        write_frame(stream, FrameType::Error, id, &encode_error(code, a, b, msg))
    };
    match frame.ty {
        FrameType::Hello => match parse_hello(&frame.payload) {
            Ok((min, max, _client)) => {
                if min > VERSION || max < VERSION {
                    reply_error(
                        stream,
                        ErrorCode::VersionMismatch,
                        0,
                        0,
                        &format!("server speaks version {VERSION}, client offered {min}..={max}"),
                    )?;
                    return Ok(After::Close);
                }
                let banner = format!("anatomy-serve/{}", env!("CARGO_PKG_VERSION"));
                write_frame(stream, FrameType::HelloOk, id, &encode_hello_ok(VERSION, &banner))?;
                Ok(After::KeepOpen)
            }
            Err(e) => {
                reply_error(stream, ErrorCode::BadRequest, 0, 0, &e.to_string())?;
                Ok(After::KeepOpen)
            }
        },
        FrameType::Infer => {
            let (model, count, samples) = match parse_infer(&frame.payload) {
                Ok(parsed) => parsed,
                Err(e) => {
                    reply_error(stream, ErrorCode::BadRequest, 0, 0, &e.to_string())?;
                    return Ok(After::KeepOpen);
                }
            };
            let Some(frontend) = registry.frontend(&model) else {
                reply_error(
                    stream,
                    ErrorCode::UnknownModel,
                    0,
                    0,
                    &format!("model '{model}' is not hosted"),
                )?;
                return Ok(After::KeepOpen);
            };
            let want = (count as usize).saturating_mul(frontend.sample_elems());
            if count == 0 || samples.len() != want {
                reply_error(
                    stream,
                    ErrorCode::BadRequest,
                    0,
                    0,
                    &format!(
                        "payload must be count × sample_elems = {want} f32s for count={count}, \
                         got {}",
                        samples.len()
                    ),
                )?;
                return Ok(After::KeepOpen);
            }
            match frontend.submit(&samples).and_then(|pending| pending.wait()) {
                Ok(out) => {
                    let payload =
                        encode_infer_ok(count, frontend.classes() as u32, &out.top1, &out.probs);
                    write_frame(stream, FrameType::InferOk, id, &payload)?;
                    Ok(After::KeepOpen)
                }
                Err(Error::Busy { queued, capacity }) => {
                    reply_error(
                        stream,
                        ErrorCode::Busy,
                        queued as u32,
                        capacity as u32,
                        "queue full; retry with backoff",
                    )?;
                    Ok(After::KeepOpen)
                }
                Err(Error::BadInput(msg)) => {
                    reply_error(stream, ErrorCode::BadRequest, 0, 0, &msg)?;
                    Ok(After::KeepOpen)
                }
                Err(e) => {
                    reply_error(stream, ErrorCode::Internal, 0, 0, &e.to_string())?;
                    Ok(After::KeepOpen)
                }
            }
        }
        FrameType::Stats => {
            let filter = match parse_stats(&frame.payload) {
                Ok(filter) => filter,
                Err(e) => {
                    reply_error(stream, ErrorCode::BadRequest, 0, 0, &e.to_string())?;
                    return Ok(After::KeepOpen);
                }
            };
            match registry.stats_text(filter.as_deref()) {
                Ok(text) => {
                    write_frame(stream, FrameType::StatsOk, id, &encode_stats_ok(&text))?;
                    Ok(After::KeepOpen)
                }
                Err(e) => {
                    reply_error(stream, ErrorCode::UnknownModel, 0, 0, &e.to_string())?;
                    Ok(After::KeepOpen)
                }
            }
        }
        FrameType::Reload => {
            let (model, dict_bytes) = match parse_reload(&frame.payload) {
                Ok(parsed) => parsed,
                Err(e) => {
                    reply_error(stream, ErrorCode::BadRequest, 0, 0, &e.to_string())?;
                    return Ok(After::KeepOpen);
                }
            };
            if registry.frontend(&model).is_none() {
                reply_error(
                    stream,
                    ErrorCode::UnknownModel,
                    0,
                    0,
                    &format!("model '{model}' is not hosted"),
                )?;
                return Ok(After::KeepOpen);
            }
            let dict = match StateDict::from_bytes(dict_bytes) {
                Ok(dict) => dict,
                Err(e) => {
                    reply_error(stream, ErrorCode::StateDict, 0, 0, &e.to_string())?;
                    return Ok(After::KeepOpen);
                }
            };
            match registry.reload(&model, dict) {
                Ok(generation) => {
                    write_frame(stream, FrameType::ReloadOk, id, &encode_reload_ok(generation))?;
                    Ok(After::KeepOpen)
                }
                Err(e) => {
                    reply_error(stream, ErrorCode::StateDict, 0, 0, &e.to_string())?;
                    Ok(After::KeepOpen)
                }
            }
        }
        // response types arriving at the server mean the peer is not
        // speaking the client half of the protocol — close
        FrameType::HelloOk
        | FrameType::InferOk
        | FrameType::Error
        | FrameType::StatsOk
        | FrameType::ReloadOk => {
            reply_error(
                stream,
                ErrorCode::BadFrame,
                0,
                0,
                &format!("{:?} is a server→client frame type", frame.ty),
            )?;
            Ok(After::Close)
        }
    }
}
