//! `anatomy-serve`: the network-facing, multi-model serving daemon.
//!
//! This module puts a process boundary in front of the serving layer
//! (DESIGN.md §9): a [`Daemon`] binds a [`std::net::TcpListener`],
//! hosts any number of named models — one
//! [`BatchingFrontend`](crate::serve::BatchingFrontend) replica set
//! per model, all planning through one shared
//! [`PlanCache`](conv::PlanCache) — and speaks a hand-rolled,
//! length-prefixed binary protocol (no external dependencies;
//! byte-level spec in `docs/PROTOCOL.md`):
//!
//! * [`protocol`] — frame types and payload encodings;
//! * [`codec`] — transport framing (incremental reads, header
//!   validation, size caps);
//! * [`registry`] — the name → frontend routing table and the
//!   scrapeable stats text;
//! * `router` (internal) — the per-connection dispatch loop;
//! * [`client`] — a blocking [`Client`] for the same protocol.
//!
//! Three operational properties the tests pin down:
//!
//! * **Admission control**: each model's queue is bounded
//!   ([`ServeConfig::queue_cap`](crate::serve::ServeConfig));
//!   requests beyond it are load-shed with a typed
//!   [`Busy`](protocol::ErrorCode::Busy) error frame rather than
//!   queued into unbounded latency.
//! * **Zero-downtime weight reload**: a
//!   [`Reload`](protocol::FrameType::Reload) frame atomically
//!   publishes a new [`StateDict`](crate::StateDict) through the
//!   model's [`gxm::HotSwap`] cell; replicas pick it up at their next
//!   batch boundary while in-flight batches finish on the old
//!   weights — no request fails or pauses during a swap.
//! * **Hostile-input hardening**: truncated, oversized and
//!   wrong-version frames, unknown models, wrong payload sizes and
//!   mid-request disconnects are all answered (or dropped) without
//!   taking the daemon down.
//!
//! The operator's guide — starting the daemon, example sessions,
//! stats scraping, hot-reload walkthrough, troubleshooting — is in
//! the README ("Running the daemon").

pub mod client;
pub mod codec;
pub mod protocol;
pub mod registry;
mod router;

pub use client::{Client, ClientConfig, ModelInfo, RetryPolicy};
pub use registry::{ModelConfig, ModelRegistry};

use crate::Error;
use protocol::DEFAULT_MAX_FRAME_LEN;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Listener configuration of a [`Daemon`].
///
/// ```
/// use anatomy::daemon::DaemonConfig;
///
/// let cfg = DaemonConfig::loopback(); // 127.0.0.1, ephemeral port
/// assert_eq!(cfg.addr, "127.0.0.1:0");
/// let cfg = DaemonConfig::new("0.0.0.0:7433").with_max_frame_len(1 << 20);
/// assert_eq!(cfg.max_frame_len, 1 << 20);
/// ```
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Address to bind, `host:port` (port 0 = ephemeral; read the
    /// result from [`Daemon::local_addr`]).
    pub addr: String,
    /// Per-frame payload cap in bytes; frames declaring more are
    /// rejected at the header with a
    /// [`BadFrame`](protocol::ErrorCode::BadFrame) error. Must cover
    /// the serialized [`StateDict`](crate::StateDict) size for
    /// reloads to work.
    pub max_frame_len: u32,
}

impl DaemonConfig {
    /// Bind `addr` with the default 1 GiB frame cap.
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), max_frame_len: DEFAULT_MAX_FRAME_LEN }
    }

    /// `127.0.0.1:0` — loopback on an ephemeral port, the test and
    /// example configuration.
    pub fn loopback() -> Self {
        Self::new("127.0.0.1:0")
    }

    /// Override the per-frame payload cap.
    pub fn with_max_frame_len(mut self, max: u32) -> Self {
        self.max_frame_len = max;
        self
    }
}

/// The serving daemon: a TCP listener over a [`ModelRegistry`] (see
/// the [module docs](self)).
///
/// ```
/// use anatomy::daemon::{Client, Daemon, DaemonConfig, ModelConfig};
/// use anatomy::serve::ServeConfig;
/// use anatomy::{ConvOpts, GraphBuilder};
/// use std::time::Duration;
///
/// let model = GraphBuilder::new()
///     .input("data", 3, 8, 8)
///     .conv("c1", ConvOpts::k(8).rs(3).pad(1).bias().relu())
///     .gap("g")
///     .fc("logits", 4)
///     .softmax("loss")
///     .build()
///     .unwrap();
/// let serve = ServeConfig::new(1, 1, 2).with_max_wait(Duration::from_millis(1));
/// let daemon = Daemon::bind(
///     DaemonConfig::loopback(),
///     vec![ModelConfig::new("tiny", &model, serve).unwrap()],
/// )
/// .unwrap();
///
/// let mut client = Client::connect(daemon.local_addr()).unwrap();
/// let out = client.infer("tiny", 1, &vec![0.5f32; 3 * 8 * 8]).unwrap();
/// assert_eq!(out.top1.len(), 1);
///
/// let stats = daemon.shutdown(); // final scrape, then orderly stop
/// assert!(stats.contains("serve_model_requests_total{model=\"tiny\"} 1"));
/// ```
pub struct Daemon {
    local_addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// Build the registry (replica threads and JIT plans come up
    /// here), bind the listener, and start accepting connections.
    ///
    /// # Errors
    /// Any model build error; [`Error::Io`] when the address cannot
    /// be bound; [`Error::Serve`] when the accept thread cannot
    /// spawn.
    pub fn bind(cfg: DaemonConfig, models: Vec<ModelConfig>) -> Result<Self, Error> {
        let mut registry = ModelRegistry::new();
        for model in models {
            registry.host(model)?;
        }
        Self::bind_registry(cfg, registry)
    }

    /// [`Self::bind`] over an already-populated registry (use this to
    /// host models built elsewhere, or to keep a handle for in-process
    /// [`ModelRegistry::reload`] calls — the daemon exposes its copy
    /// via [`Self::registry`] either way).
    ///
    /// # Errors
    /// As [`Self::bind`].
    pub fn bind_registry(cfg: DaemonConfig, registry: ModelRegistry) -> Result<Self, Error> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        // non-blocking so the accept loop can poll the shutdown flag
        listener.set_nonblocking(true)?;
        let registry = Arc::new(registry);
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::<JoinHandle<()>>::new()));
        let accept = {
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            let max_frame = cfg.max_frame_len;
            std::thread::Builder::new()
                .name("anatomy-serve-accept".to_string())
                .spawn(move || accept_loop(listener, registry, shutdown, connections, max_frame))
                .map_err(|e| Error::Serve(format!("spawn accept thread: {e}")))?
        };
        Ok(Self { local_addr, registry, shutdown, accept: Some(accept), connections })
    }

    /// The bound address (resolves the ephemeral port of
    /// [`DaemonConfig::loopback`]).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The hosted registry (for in-process reloads and stats).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The full stats text, as a [`Stats`](protocol::FrameType::Stats)
    /// round trip would return it.
    pub fn stats_text(&self) -> String {
        self.registry.stats_text(None).expect("no filter cannot name an unknown model")
    }

    /// Stop accepting, join every connection thread, shut the hosted
    /// frontends down, and return the final stats text. Dropping the
    /// daemon performs the same orderly shutdown (minus the returned
    /// stats).
    pub fn shutdown(mut self) -> String {
        let stats = self.stats_text();
        self.stop();
        stats
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.connections.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
        // every router thread is joined, so this should be the last
        // Arc: unwrap it and shut the frontends down orderly (if a
        // clone does linger, dropping the registry later still joins
        // the replica threads via the frontends' Drop)
        if let Ok(registry) = Arc::try_unwrap(std::mem::take(&mut self.registry)) {
            registry.shutdown();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The accept loop: poll the non-blocking listener, spawn one router
/// thread per connection, reap finished threads.
fn accept_loop(
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    shutdown: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_frame: u32,
) {
    let mut conn_seq = 0u64;
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                registry.counters().connections.fetch_add(1, Ordering::Relaxed);
                conn_seq += 1;
                let registry = Arc::clone(&registry);
                let shutdown = Arc::clone(&shutdown);
                let handle = std::thread::Builder::new()
                    .name(format!("anatomy-serve-conn-{conn_seq}"))
                    .spawn(move || {
                        router::serve_connection(stream, &registry, &shutdown, max_frame)
                    });
                if let Ok(handle) = handle {
                    let mut conns = connections.lock().unwrap();
                    // reap finished connections so long-lived daemons
                    // don't accumulate dead handles
                    conns.retain(|h| !h.is_finished());
                    conns.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}
