//! The `anatomy-serve` wire protocol: frame types and payload
//! encodings.
//!
//! Everything on the wire is a length-prefixed binary **frame** with a
//! fixed 16-byte header (all multi-byte integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "ANAT" (0x41 0x4E 0x41 0x54)
//! 4       1     protocol version (currently 1)
//! 5       1     frame type (FrameType as u8)
//! 6       2     flags (must be 0 in version 1)
//! 8       4     frame id (echoed verbatim in the response)
//! 12      4     payload length in bytes
//! ```
//!
//! The payload encodings live in the `encode_*`/`parse_*` pairs of
//! this module; the byte-level specification — including a worked hex
//! example of a full round trip — is `docs/PROTOCOL.md`. The
//! transport framing (header validation, partial reads, size limits)
//! is [`super::codec`].

use crate::Error;
use std::fmt;

/// The 4-byte frame magic: `"ANAT"`.
pub const MAGIC: [u8; 4] = *b"ANAT";

/// The protocol version this build speaks (header byte 4).
pub const VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 16;

/// Default cap on a single frame's payload length (1 GiB). Frames
/// declaring more are rejected at the header — before any allocation
/// — with [`ErrorCode::BadFrame`].
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 30;

/// Every frame type of protocol version 1.
///
/// The discriminant is the header's type byte. `*Ok` types are
/// server→client responses; [`FrameType::Error`] is the server's
/// response to any request it cannot serve.
///
/// ```
/// use anatomy::daemon::protocol::FrameType;
/// assert_eq!(FrameType::Infer as u8, 3);
/// assert_eq!(FrameType::from_u8(3), Some(FrameType::Infer));
/// assert_eq!(FrameType::from_u8(0), None);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client→server: version negotiation, first frame on a
    /// connection.
    Hello = 1,
    /// Server→client: negotiation succeeded; carries the agreed
    /// version and a server banner.
    HelloOk = 2,
    /// Client→server: run inference on named model.
    Infer = 3,
    /// Server→client: inference results (top-1 indices +
    /// probabilities).
    InferOk = 4,
    /// Server→client: typed failure ([`ErrorCode`] + detail words +
    /// message).
    Error = 5,
    /// Client→server: request the plain-text stats snapshot.
    Stats = 6,
    /// Server→client: the scrapeable stats text.
    StatsOk = 7,
    /// Client→server: hot-swap a model's weights (payload carries a
    /// serialized [`crate::StateDict`]).
    Reload = 8,
    /// Server→client: the reload was published; carries the new
    /// weight generation.
    ReloadOk = 9,
}

impl FrameType {
    /// Decode a header type byte (`None` for unknown types).
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => Self::Hello,
            2 => Self::HelloOk,
            3 => Self::Infer,
            4 => Self::InferOk,
            5 => Self::Error,
            6 => Self::Stats,
            7 => Self::StatsOk,
            8 => Self::Reload,
            9 => Self::ReloadOk,
            _ => return None,
        })
    }
}

/// Typed failure codes carried by [`FrameType::Error`] frames.
///
/// The two `u32` detail words of an error payload are code-specific:
/// for [`ErrorCode::Busy`] they carry `(queued, capacity)` of the
/// load-shedding queue; every other code sends zeros.
///
/// ```
/// use anatomy::daemon::protocol::ErrorCode;
/// assert_eq!(ErrorCode::Busy as u16, 5);
/// assert_eq!(ErrorCode::from_u16(5), Some(ErrorCode::Busy));
/// assert_eq!(ErrorCode::from_u16(999), None);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame itself was malformed (bad magic/flags/length,
    /// unknown type, oversized). The server closes the connection
    /// after sending this — framing may have desynchronized.
    BadFrame = 1,
    /// The header's version byte (or the Hello range) is not
    /// supported by the server. Connection closes after this.
    VersionMismatch = 2,
    /// The request named a model this daemon does not host.
    UnknownModel = 3,
    /// The request payload failed validation (wrong sample count or
    /// payload size, zero samples, …).
    BadRequest = 4,
    /// Admission control shed the request: the model's queue is full.
    /// Detail words carry `(queued, capacity)`. Retry with backoff.
    Busy = 5,
    /// A reload carried a state dict that is malformed or does not
    /// match the served model.
    StateDict = 6,
    /// The serving pipeline failed internally.
    Internal = 7,
}

impl ErrorCode {
    /// Decode a wire code (`None` for unknown codes).
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => Self::BadFrame,
            2 => Self::VersionMismatch,
            3 => Self::UnknownModel,
            4 => Self::BadRequest,
            5 => Self::Busy,
            6 => Self::StateDict,
            7 => Self::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One decoded frame: its type, the client-chosen id (echoed in
/// responses), and the raw payload bytes.
///
/// ```
/// use anatomy::daemon::protocol::{Frame, FrameType};
/// let f = Frame { ty: FrameType::Stats, id: 7, payload: vec![0, 0] };
/// assert_eq!(f.ty, FrameType::Stats);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// The frame type from the header.
    pub ty: FrameType,
    /// The correlation id from the header.
    pub id: u32,
    /// The payload bytes (already length-validated by the codec).
    pub payload: Vec<u8>,
}

/// Encode a frame header for `ty`/`id` and a `payload_len`-byte
/// payload.
///
/// ```
/// use anatomy::daemon::protocol::{encode_header, FrameType, HEADER_LEN, MAGIC};
/// let h = encode_header(FrameType::Hello, 1, 8);
/// assert_eq!(h.len(), HEADER_LEN);
/// assert_eq!(&h[..4], &MAGIC);
/// assert_eq!(h[5], FrameType::Hello as u8);
/// ```
pub fn encode_header(ty: FrameType, id: u32, payload_len: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4] = VERSION;
    h[5] = ty as u8;
    // bytes 6..8: flags, zero in version 1
    h[8..12].copy_from_slice(&id.to_le_bytes());
    h[12..16].copy_from_slice(&payload_len.to_le_bytes());
    h
}

/// A checked little-endian reader over a payload slice — every
/// `parse_*` function uses it so truncated payloads become typed
/// [`Error::BadInput`]s instead of panics.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.buf.len() - self.at < n {
            return Err(Error::BadInput(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.buf.len() - self.at
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, Error> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u16`-length-prefixed UTF-8 string.
    fn string(&mut self) -> Result<String, Error> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::BadInput("string field is not valid UTF-8".to_string()))
    }

    fn rest(self) -> &'a [u8] {
        &self.buf[self.at..]
    }

    fn finish(self) -> Result<(), Error> {
        if self.at != self.buf.len() {
            return Err(Error::BadInput(format!(
                "payload has {} trailing bytes",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

fn push_string(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode a [`FrameType::Hello`] payload: the version range the
/// client speaks and a free-form client name.
///
/// ```
/// use anatomy::daemon::protocol::{encode_hello, parse_hello};
/// let p = encode_hello(1, 1, "bench");
/// assert_eq!(parse_hello(&p).unwrap(), (1, 1, "bench".to_string()));
/// ```
pub fn encode_hello(min_version: u8, max_version: u8, client: &str) -> Vec<u8> {
    let mut p = vec![min_version, max_version];
    push_string(&mut p, client);
    p
}

/// Parse a [`FrameType::Hello`] payload into `(min, max, client)`.
///
/// # Errors
/// [`Error::BadInput`] on truncated or trailing bytes.
pub fn parse_hello(payload: &[u8]) -> Result<(u8, u8, String), Error> {
    let mut c = Cursor::new(payload);
    let min = c.u8()?;
    let max = c.u8()?;
    let client = c.string()?;
    c.finish()?;
    Ok((min, max, client))
}

/// Encode a [`FrameType::HelloOk`] payload: the agreed version and
/// the server banner.
///
/// ```
/// use anatomy::daemon::protocol::{encode_hello_ok, parse_hello_ok};
/// let p = encode_hello_ok(1, "anatomy-serve/0.1");
/// assert_eq!(parse_hello_ok(&p).unwrap(), (1, "anatomy-serve/0.1".to_string()));
/// ```
pub fn encode_hello_ok(version: u8, banner: &str) -> Vec<u8> {
    let mut p = vec![version];
    push_string(&mut p, banner);
    p
}

/// Parse a [`FrameType::HelloOk`] payload into `(version, banner)`.
///
/// # Errors
/// [`Error::BadInput`] on truncated or trailing bytes.
pub fn parse_hello_ok(payload: &[u8]) -> Result<(u8, String), Error> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    let banner = c.string()?;
    c.finish()?;
    Ok((version, banner))
}

/// Encode a [`FrameType::Infer`] payload: model name, sample count,
/// then `samples` as little-endian f32s.
///
/// ```
/// use anatomy::daemon::protocol::{encode_infer, parse_infer};
/// let p = encode_infer("tiny", 1, &[0.5f32; 4]);
/// let (model, count, data) = parse_infer(&p).unwrap();
/// assert_eq!((model.as_str(), count), ("tiny", 1));
/// assert_eq!(data, vec![0.5f32; 4]);
/// ```
pub fn encode_infer(model: &str, count: u32, samples: &[f32]) -> Vec<u8> {
    let mut p = Vec::with_capacity(2 + model.len() + 4 + samples.len() * 4);
    push_string(&mut p, model);
    p.extend_from_slice(&count.to_le_bytes());
    for v in samples {
        p.extend_from_slice(&v.to_le_bytes());
    }
    p
}

/// Parse a [`FrameType::Infer`] payload into
/// `(model, count, samples)`. The f32 payload length is *not*
/// validated against the model here — the router checks it against
/// the model's `sample_elems`.
///
/// # Errors
/// [`Error::BadInput`] when the name/count prefix is truncated or the
/// trailing bytes are not a whole number of f32s.
pub fn parse_infer(payload: &[u8]) -> Result<(String, u32, Vec<f32>), Error> {
    let mut c = Cursor::new(payload);
    let model = c.string()?;
    let count = c.u32()?;
    let rest = c.rest();
    if !rest.len().is_multiple_of(4) {
        return Err(Error::BadInput(format!(
            "sample bytes ({}) are not a whole number of f32s",
            rest.len()
        )));
    }
    let samples = rest.chunks_exact(4).map(|b| f32::from_le_bytes(b.try_into().unwrap())).collect();
    Ok((model, count, samples))
}

/// Encode a [`FrameType::InferOk`] payload: count, classes, `count`
/// top-1 indices (u32), then `count × classes` probabilities (f32).
///
/// ```
/// use anatomy::daemon::protocol::{encode_infer_ok, parse_infer_ok};
/// let p = encode_infer_ok(1, 2, &[1], &[0.25, 0.75]);
/// let (top1, probs) = parse_infer_ok(&p).unwrap();
/// assert_eq!(top1, vec![1]);
/// assert_eq!(probs, vec![0.25, 0.75]);
/// ```
pub fn encode_infer_ok(count: u32, classes: u32, top1: &[usize], probs: &[f32]) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + top1.len() * 4 + probs.len() * 4);
    p.extend_from_slice(&count.to_le_bytes());
    p.extend_from_slice(&classes.to_le_bytes());
    for t in top1 {
        p.extend_from_slice(&(*t as u32).to_le_bytes());
    }
    for v in probs {
        p.extend_from_slice(&v.to_le_bytes());
    }
    p
}

/// Parse a [`FrameType::InferOk`] payload into `(top1, probs)`.
///
/// # Errors
/// [`Error::BadInput`] when the payload length disagrees with its own
/// count/classes prefix.
pub fn parse_infer_ok(payload: &[u8]) -> Result<(Vec<usize>, Vec<f32>), Error> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let classes = c.u32()? as usize;
    let mut top1 = Vec::with_capacity(count);
    for _ in 0..count {
        top1.push(c.u32()? as usize);
    }
    let want = count
        .checked_mul(classes)
        .ok_or_else(|| Error::BadInput("count × classes overflows".to_string()))?;
    let rest = c.rest();
    if rest.len() != want * 4 {
        return Err(Error::BadInput(format!(
            "probability bytes ({}) disagree with count × classes ({want} f32s)",
            rest.len()
        )));
    }
    let probs = rest.chunks_exact(4).map(|b| f32::from_le_bytes(b.try_into().unwrap())).collect();
    Ok((top1, probs))
}

/// Encode a [`FrameType::Error`] payload: code, two code-specific
/// detail words, and a human-readable message.
///
/// ```
/// use anatomy::daemon::protocol::{encode_error, parse_error, ErrorCode};
/// let p = encode_error(ErrorCode::Busy, 12, 8, "queue full");
/// let (code, a, b, msg) = parse_error(&p).unwrap();
/// assert_eq!((code, a, b), (ErrorCode::Busy, 12, 8));
/// assert_eq!(msg, "queue full");
/// ```
pub fn encode_error(code: ErrorCode, a: u32, b: u32, message: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(10 + 2 + message.len());
    p.extend_from_slice(&(code as u16).to_le_bytes());
    p.extend_from_slice(&a.to_le_bytes());
    p.extend_from_slice(&b.to_le_bytes());
    push_string(&mut p, message);
    p
}

/// Parse a [`FrameType::Error`] payload into
/// `(code, detail_a, detail_b, message)`.
///
/// # Errors
/// [`Error::BadInput`] on truncated payloads or unknown codes.
pub fn parse_error(payload: &[u8]) -> Result<(ErrorCode, u32, u32, String), Error> {
    let mut c = Cursor::new(payload);
    let raw = c.u16()?;
    let code = ErrorCode::from_u16(raw)
        .ok_or_else(|| Error::BadInput(format!("unknown error code {raw}")))?;
    let a = c.u32()?;
    let b = c.u32()?;
    let msg = c.string()?;
    c.finish()?;
    Ok((code, a, b, msg))
}

/// Encode a [`FrameType::Stats`] payload: the model-name filter
/// (empty string = all models + daemon-level counters).
///
/// ```
/// use anatomy::daemon::protocol::{encode_stats, parse_stats};
/// assert_eq!(parse_stats(&encode_stats("")).unwrap(), None);
/// assert_eq!(parse_stats(&encode_stats("resnet")).unwrap(), Some("resnet".to_string()));
/// ```
pub fn encode_stats(model: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(2 + model.len());
    push_string(&mut p, model);
    p
}

/// Parse a [`FrameType::Stats`] payload into the optional model
/// filter.
///
/// # Errors
/// [`Error::BadInput`] on truncated or trailing bytes.
pub fn parse_stats(payload: &[u8]) -> Result<Option<String>, Error> {
    let mut c = Cursor::new(payload);
    let model = c.string()?;
    c.finish()?;
    Ok(if model.is_empty() { None } else { Some(model) })
}

/// Encode a [`FrameType::StatsOk`] payload: the stats text, raw
/// UTF-8.
///
/// ```
/// use anatomy::daemon::protocol::{encode_stats_ok, parse_stats_ok};
/// assert_eq!(parse_stats_ok(&encode_stats_ok("a 1\n")).unwrap(), "a 1\n");
/// ```
pub fn encode_stats_ok(text: &str) -> Vec<u8> {
    text.as_bytes().to_vec()
}

/// Parse a [`FrameType::StatsOk`] payload back into text.
///
/// # Errors
/// [`Error::BadInput`] when the payload is not valid UTF-8.
pub fn parse_stats_ok(payload: &[u8]) -> Result<String, Error> {
    String::from_utf8(payload.to_vec())
        .map_err(|_| Error::BadInput("stats text is not valid UTF-8".to_string()))
}

/// Encode a [`FrameType::Reload`] payload: model name, then the
/// serialized [`crate::StateDict`]
/// (see [`StateDict::to_bytes`](crate::StateDict::to_bytes)).
///
/// ```
/// use anatomy::daemon::protocol::{encode_reload, parse_reload};
/// let p = encode_reload("tiny", &[1, 2, 3]);
/// let (model, dict) = parse_reload(&p).unwrap();
/// assert_eq!(model, "tiny");
/// assert_eq!(dict, &[1, 2, 3]);
/// ```
pub fn encode_reload(model: &str, dict_bytes: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(2 + model.len() + dict_bytes.len());
    push_string(&mut p, model);
    p.extend_from_slice(dict_bytes);
    p
}

/// Parse a [`FrameType::Reload`] payload into
/// `(model, dict_bytes)` — the dict bytes are validated by
/// [`StateDict::from_bytes`](crate::StateDict::from_bytes), not here.
///
/// # Errors
/// [`Error::BadInput`] when the name prefix is truncated.
pub fn parse_reload(payload: &[u8]) -> Result<(String, &[u8]), Error> {
    let mut c = Cursor::new(payload);
    let model = c.string()?;
    Ok((model, c.rest()))
}

/// Encode a [`FrameType::ReloadOk`] payload: the new weight
/// generation.
///
/// ```
/// use anatomy::daemon::protocol::{encode_reload_ok, parse_reload_ok};
/// assert_eq!(parse_reload_ok(&encode_reload_ok(3)).unwrap(), 3);
/// ```
pub fn encode_reload_ok(generation: u64) -> Vec<u8> {
    generation.to_le_bytes().to_vec()
}

/// Parse a [`FrameType::ReloadOk`] payload into the generation.
///
/// # Errors
/// [`Error::BadInput`] on truncated or trailing bytes.
pub fn parse_reload_ok(payload: &[u8]) -> Result<u64, Error> {
    let mut c = Cursor::new(payload);
    let generation = c.u64()?;
    c.finish()?;
    Ok(generation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_exactly_the_documented_bytes() {
        let h = encode_header(FrameType::Infer, 0x01020304, 0x0a0b0c0d);
        assert_eq!(&h[..4], b"ANAT");
        assert_eq!(h[4], VERSION);
        assert_eq!(h[5], 3);
        assert_eq!(&h[6..8], &[0, 0]);
        assert_eq!(&h[8..12], &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(&h[12..16], &[0x0d, 0x0c, 0x0b, 0x0a]);
    }

    #[test]
    fn every_frame_type_round_trips_through_its_byte() {
        for ty in [
            FrameType::Hello,
            FrameType::HelloOk,
            FrameType::Infer,
            FrameType::InferOk,
            FrameType::Error,
            FrameType::Stats,
            FrameType::StatsOk,
            FrameType::Reload,
            FrameType::ReloadOk,
        ] {
            assert_eq!(FrameType::from_u8(ty as u8), Some(ty));
        }
        assert_eq!(FrameType::from_u8(0), None);
        assert_eq!(FrameType::from_u8(10), None);
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        assert!(parse_hello(&[1]).is_err());
        assert!(parse_infer(&[0, 1]).is_err());
        // 3 trailing bytes: not a whole f32
        let mut p = encode_infer("m", 1, &[]);
        p.extend_from_slice(&[0, 0, 0]);
        assert!(parse_infer(&p).is_err());
        assert!(parse_error(&encode_error(ErrorCode::Busy, 1, 2, "x")[..5]).is_err());
        assert!(parse_reload_ok(&[0; 7]).is_err());
        // trailing garbage is rejected where the payload is
        // self-delimiting
        let mut p = encode_hello(1, 1, "c");
        p.push(0);
        assert!(parse_hello(&p).is_err());
    }

    #[test]
    fn infer_ok_validates_its_own_geometry() {
        let p = encode_infer_ok(2, 3, &[0, 2], &[0.1; 6]);
        let (top1, probs) = parse_infer_ok(&p).unwrap();
        assert_eq!(top1, vec![0, 2]);
        assert_eq!(probs.len(), 6);
        // one probability short of count × classes
        let bad = encode_infer_ok(2, 3, &[0, 2], &[0.1; 5]);
        assert!(parse_infer_ok(&bad).is_err());
    }
}
