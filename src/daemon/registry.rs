//! The multi-model registry: named [`BatchingFrontend`]s sharing one
//! [`PlanCache`].
//!
//! Each hosted model gets its own frontend (its own replica set,
//! bounded queue and hot-swap cell) but every frontend plans through
//! the registry's single plan cache — two hosted models that share
//! layer shapes JIT them once, exactly like replicas of one model do
//! (DESIGN.md §9.1). The registry also renders the plain-text stats
//! snapshot the daemon serves as a [`StatsOk`
//! frame](super::protocol::FrameType::StatsOk).

use crate::serve::{BatchingFrontend, ServeConfig};
use crate::{Error, IntoModelSpec, ModelSpec, StateDict};
use conv::PlanCache;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// One model to host: a name (the routing key), a spec, a serving
/// shape and optional initial weights.
///
/// ```
/// use anatomy::daemon::ModelConfig;
/// use anatomy::serve::ServeConfig;
/// use anatomy::{ConvOpts, GraphBuilder};
///
/// let model = GraphBuilder::new()
///     .input("data", 3, 8, 8)
///     .conv("c1", ConvOpts::k(8).rs(3).pad(1).bias().relu())
///     .gap("g")
///     .fc("logits", 4)
///     .softmax("loss")
///     .build()
///     .unwrap();
/// let cfg = ModelConfig::new("tiny", &model, ServeConfig::new(1, 1, 2)).unwrap();
/// assert_eq!(cfg.name(), "tiny");
///
/// // names that could corrupt wire or stats framing are rejected
/// assert!(ModelConfig::new("", &model, ServeConfig::new(1, 1, 2)).is_err());
/// assert!(ModelConfig::new("a\"b", &model, ServeConfig::new(1, 1, 2)).is_err());
/// ```
pub struct ModelConfig {
    name: String,
    spec: ModelSpec,
    serve: ServeConfig,
    weights: Option<StateDict>,
}

impl ModelConfig {
    /// Describe a model to host. `model` is anything
    /// [`IntoModelSpec`].
    ///
    /// # Errors
    /// [`Error::BadInput`] for unusable names (empty, longer than 255
    /// bytes, or containing control characters / `"` — names travel
    /// in wire frames and stats-text labels); any spec validation
    /// error from `model`.
    pub fn new(
        name: impl Into<String>,
        model: impl IntoModelSpec,
        serve: ServeConfig,
    ) -> Result<Self, Error> {
        let name = name.into();
        if name.is_empty() || name.len() > 255 {
            return Err(Error::BadInput(format!(
                "model name must be 1..=255 bytes, got {}",
                name.len()
            )));
        }
        if name.chars().any(|c| c.is_control() || c == '"') {
            return Err(Error::BadInput(
                "model name must not contain control characters or '\"'".to_string(),
            ));
        }
        Ok(Self { name, spec: model.into_model_spec()?, serve, weights: None })
    }

    /// Serve `weights` from the start (replicas load this dict before
    /// accepting traffic).
    pub fn with_weights(mut self, weights: StateDict) -> Self {
        self.weights = Some(weights);
        self
    }

    /// The routing key clients put in
    /// [`Infer`](super::protocol::FrameType::Infer) frames.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Daemon-level wire counters, shared with every connection thread.
#[derive(Default)]
pub(crate) struct DaemonCounters {
    pub(crate) connections: AtomicU64,
    pub(crate) frames: AtomicU64,
    pub(crate) wire_errors: AtomicU64,
}

/// Named frontends behind one shared plan cache (see the [module
/// docs](self)).
///
/// ```
/// use anatomy::daemon::{ModelConfig, ModelRegistry};
/// use anatomy::serve::ServeConfig;
/// use anatomy::{ConvOpts, GraphBuilder};
///
/// let model = GraphBuilder::new()
///     .input("data", 3, 8, 8)
///     .conv("c1", ConvOpts::k(8).rs(3).pad(1).bias().relu())
///     .gap("g")
///     .fc("logits", 4)
///     .softmax("loss")
///     .build()
///     .unwrap();
/// let mut registry = ModelRegistry::new();
/// registry.host(ModelConfig::new("tiny", &model, ServeConfig::new(1, 1, 2)).unwrap()).unwrap();
///
/// assert_eq!(registry.names(), vec!["tiny".to_string()]);
/// let out = registry.frontend("tiny").unwrap().infer(&vec![0.1; 3 * 8 * 8]).unwrap();
/// assert_eq!(out.top1.len(), 1);
/// assert!(registry.stats_text(None).unwrap().contains("serve_model_requests_total{model=\"tiny\"}"));
/// registry.shutdown();
/// ```
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, BatchingFrontend>,
    cache: PlanCache,
    counters: DaemonCounters,
}

impl ModelRegistry {
    /// An empty registry with a fresh shared [`PlanCache`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Build and start serving `cfg` (replica threads spin up here;
    /// the frontend plans through the registry's shared cache).
    ///
    /// # Errors
    /// [`Error::BadInput`] when the name is already hosted; any build
    /// or weight-load error from the frontend.
    pub fn host(&mut self, cfg: ModelConfig) -> Result<(), Error> {
        if self.models.contains_key(&cfg.name) {
            return Err(Error::BadInput(format!("model '{}' is already hosted", cfg.name)));
        }
        let frontend = BatchingFrontend::with_cache_and_weights(
            &cfg.spec,
            cfg.serve,
            self.cache.clone(),
            cfg.weights.as_ref(),
        )?;
        self.models.insert(cfg.name, frontend);
        Ok(())
    }

    /// The frontend serving `name`, if hosted.
    pub fn frontend(&self, name: &str) -> Option<&BatchingFrontend> {
        self.models.get(name)
    }

    /// Hosted model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// The plan cache every hosted frontend shares.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Hot-swap `name`'s weights: validate against the served model's
    /// schema, publish atomically, return the new generation. Every
    /// replica of the model applies the swap at its next batch
    /// boundary; in-flight batches finish on their old weights
    /// (DESIGN.md §9.3).
    ///
    /// # Errors
    /// [`Error::BadInput`] for unknown models; [`Error::StateDict`]
    /// when the dict does not match the model.
    pub fn reload(&self, name: &str, weights: StateDict) -> Result<u64, Error> {
        let frontend = self
            .frontend(name)
            .ok_or_else(|| Error::BadInput(format!("unknown model '{name}'")))?;
        frontend.publish_weights(weights)
    }

    /// The daemon-level counters (bumped by connection threads).
    pub(crate) fn counters(&self) -> &DaemonCounters {
        &self.counters
    }

    /// Render the scrapeable plain-text stats snapshot — one
    /// `name value` or `name{model="..."} value` per line, in the
    /// style text-format metric scrapers expect (the exact line set
    /// is documented in `docs/PROTOCOL.md`). `filter` limits the
    /// snapshot to one model and omits the daemon-level lines.
    ///
    /// # Errors
    /// [`Error::BadInput`] when `filter` names a model this registry
    /// does not host.
    pub fn stats_text(&self, filter: Option<&str>) -> Result<String, Error> {
        fn one(out: &mut String, name: &str, fe: &BatchingFrontend) {
            let s = fe.stats();
            let m = format!("{{model=\"{name}\"}}");
            let _ = writeln!(out, "serve_model_replicas{m} {}", s.replicas);
            let _ = writeln!(out, "serve_model_minibatch{m} {}", s.minibatch);
            let _ = writeln!(out, "serve_model_sample_elems{m} {}", fe.sample_elems());
            let _ = writeln!(out, "serve_model_classes{m} {}", fe.classes());
            let _ = writeln!(out, "serve_model_precision{m} \"{}\"", fe.precision().name());
            let _ = writeln!(out, "serve_model_requests_total{m} {}", s.requests);
            let _ = writeln!(out, "serve_model_images_total{m} {}", s.images);
            let _ = writeln!(out, "serve_model_batches_total{m} {}", s.batches);
            let _ = writeln!(out, "serve_model_occupancy{m} {:.4}", s.mean_occupancy);
            let _ = writeln!(out, "serve_model_deadline_flushes_total{m} {}", s.deadline_flushes);
            let _ = writeln!(out, "serve_model_busy_rejections_total{m} {}", s.busy_rejections);
            let _ = writeln!(out, "serve_model_queue_depth{m} {}", s.queue_depth);
            let _ = writeln!(out, "serve_model_queue_cap{m} {}", s.queue_cap);
            let _ = writeln!(out, "serve_model_weight_generation{m} {}", s.weight_generation);
            let _ = writeln!(out, "serve_model_reloads_total{m} {}", s.reloads);
            let _ = writeln!(out, "serve_model_reload_failures_total{m} {}", s.reload_failures);
            let _ = writeln!(out, "serve_model_replica_panics_total{m} {}", s.replica_panics);
            let _ = writeln!(out, "serve_model_replica_restarts_total{m} {}", s.replica_restarts);
            let _ = writeln!(out, "serve_model_requests_failed_total{m} {}", s.requests_failed);
            let _ = writeln!(out, "serve_model_request_timeouts_total{m} {}", s.request_timeouts);
            let _ = writeln!(out, "serve_model_failed{m} {}", u8::from(s.failed));
            let _ = writeln!(out, "serve_model_p50_latency_us{m} {}", s.p50_latency.as_micros());
            let _ = writeln!(out, "serve_model_p99_latency_us{m} {}", s.p99_latency.as_micros());
        }
        let mut out = String::new();
        match filter {
            Some(name) => {
                let fe = self
                    .frontend(name)
                    .ok_or_else(|| Error::BadInput(format!("unknown model '{name}'")))?;
                one(&mut out, name, fe);
            }
            None => {
                let mut head = String::new();
                let _ = writeln!(head, "serve_protocol_version {}", super::protocol::VERSION);
                let _ = writeln!(head, "serve_models {}", self.models.len());
                let _ = writeln!(
                    head,
                    "serve_connections_total {}",
                    self.counters.connections.load(Ordering::Relaxed)
                );
                let _ = writeln!(
                    head,
                    "serve_frames_total {}",
                    self.counters.frames.load(Ordering::Relaxed)
                );
                let _ = writeln!(
                    head,
                    "serve_wire_errors_total {}",
                    self.counters.wire_errors.load(Ordering::Relaxed)
                );
                let plans = self.cache.stats();
                let _ = writeln!(head, "serve_plans_tuned {}", plans.tuned_plans);
                let _ = writeln!(head, "serve_plans_heuristic {}", plans.heuristic_plans);
                let _ = writeln!(head, "serve_plans_f32 {}", plans.f32_plans);
                let _ = writeln!(head, "serve_plans_int8 {}", plans.int8_plans);
                let _ = writeln!(head, "serve_tune_runs_total {}", plans.tune_runs);
                let _ =
                    writeln!(head, "serve_tune_micro_bench_runs_total {}", plans.tune_micro_runs);
                let _ = writeln!(head, "serve_tune_time_ms {:.3}", plans.tune_time_ms);
                for (name, fe) in &self.models {
                    one(&mut out, name, fe);
                }
                out = head + &out;
            }
        }
        Ok(out)
    }

    /// Stop every hosted frontend (drains queues, joins replica
    /// threads). Dropping the registry does the same.
    pub fn shutdown(mut self) {
        let models = std::mem::take(&mut self.models);
        for (_, fe) in models {
            fe.shutdown();
        }
    }
}
