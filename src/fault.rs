//! Deterministic fault injection for the serving stack.
//!
//! The fault-tolerance claims of DESIGN.md §13 — a replica panic is a
//! recoverable event, every request resolves, no client ever hangs —
//! are only claims until failure paths actually execute. This module
//! plants named **fault points** at the places failures happen in
//! production (replica batch execution, replica rebuild, the
//! dispatcher, the connection router, the wire codec) and lets a test
//! or an operator arm them with a seeded **fault plan** that injects
//! panics, delays and I/O errors deterministically.
//!
//! ## Zero cost by default
//!
//! Without the `chaos` cargo feature, [`point`] and [`io_point`]
//! compile to empty inline functions — the serving hot paths carry no
//! branch, no lock, no atomic. With `--features chaos` the points
//! consult the installed plan (one mutex-guarded lookup per hit;
//! chaos builds are for testing, not production).
//!
//! ## Sites
//!
//! | site | location | honored actions |
//! |---|---|---|
//! | `replica.batch` | a serving replica, after receiving a batch and before running it | panic, delay |
//! | `replica.rebuild` | the supervisor, while rebuilding a crashed replica's session | panic, delay |
//! | `dispatcher.batch` | the dispatcher, after forming a batch and before handing it to a replica | panic, delay |
//! | `router.frame` | a daemon connection thread, after decoding a request frame | panic, delay |
//! | `codec.read` | [`FrameReader::poll_frame`](crate::daemon::codec::FrameReader::poll_frame), before each transport read | panic, delay, io |
//!
//! ## Plan syntax
//!
//! A plan is `;`-separated entries, installable programmatically via
//! `install` (chaos builds only) or from the `ANATOMY_FAULT_PLAN`
//! environment variable
//! (read once, at the first fault-point hit of the process):
//!
//! ```text
//! plan    := entry (';' entry)*
//! entry   := 'seed=' u64
//!          | site '=' action ['@' trigger]
//! action  := 'panic' | 'delay:' millis 'ms' | 'io'
//! trigger := 'every' N      fire on every Nth hit of the site
//!          | 'first' N      fire on the first N hits only
//!          | 'p' FLOAT      fire with probability FLOAT (seeded RNG)
//! ```
//!
//! e.g. `seed=7;replica.batch=panic@every5;codec.read=io@p0.05`.
//! Omitting the trigger fires on every hit. Probabilistic triggers
//! draw from a per-entry xorshift stream seeded by `(plan seed, site
//! name)`, so a given seed produces the same per-site fire/skip
//! sequence on every run — thread interleaving varies, the decisions
//! do not.
//!
//! Injected panics carry the message `injected fault at <site>`;
//! injected I/O errors use [`std::io::ErrorKind::ConnectionReset`]
//! with the same marker, so logs and panic hooks can tell injected
//! failures from real ones.

#[cfg(not(feature = "chaos"))]
mod imp {
    /// Hit the named fault point. Compiled to a no-op (the `chaos`
    /// feature is off).
    #[inline(always)]
    pub fn point(_site: &str) {}

    /// Hit the named fault point on an I/O path. Compiled to a no-op
    /// returning `Ok(())` (the `chaos` feature is off).
    #[inline(always)]
    pub fn io_point(_site: &str) -> std::io::Result<()> {
        Ok(())
    }

    /// Whether a fault plan is armed — always `false` without the
    /// `chaos` feature.
    #[inline(always)]
    pub fn active() -> bool {
        false
    }
}

#[cfg(feature = "chaos")]
mod imp {
    use crate::Error;
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What an armed fault point does when its trigger fires.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FaultAction {
        /// Panic with `injected fault at <site>`. At [`point`] and
        /// [`io_point`] alike.
        Panic,
        /// Sleep for the given duration, then continue normally.
        Delay(Duration),
        /// Return an injected [`std::io::ErrorKind::ConnectionReset`]
        /// error. Only [`io_point`] can honor this; a plain [`point`]
        /// ignores it.
        Io,
    }

    /// When an armed entry fires (see the [module docs](super) for
    /// the plan grammar).
    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Trigger {
        Always,
        Every(u64),
        First(u64),
        Prob(f64),
    }

    #[derive(Clone, Debug)]
    struct Entry {
        site: String,
        action: FaultAction,
        trigger: Trigger,
        /// Hits of this entry's site so far (drives `every`/`first`).
        hits: u64,
        /// Per-entry xorshift state (drives `p`); seeded from the
        /// plan seed and the site name so the fire/skip sequence is a
        /// pure function of `(seed, site, hit index)`.
        rng: u64,
    }

    /// A parsed, seeded fault plan (see the [module docs](super)).
    #[derive(Clone, Debug, Default)]
    pub struct FaultPlan {
        seed: u64,
        entries: Vec<(String, FaultAction, String)>,
    }

    impl FaultPlan {
        /// An empty plan with the given seed (add entries with
        /// [`Self::entry`]).
        pub fn seeded(seed: u64) -> Self {
            Self { seed, entries: Vec::new() }
        }

        /// Arm `site` with `action`, fired per `trigger` (`""` or
        /// `"always"` = every hit; otherwise the `every`/`first`/`p`
        /// grammar of the module docs).
        pub fn entry(mut self, site: &str, action: FaultAction, trigger: &str) -> Self {
            self.entries.push((site.to_string(), action, trigger.to_string()));
            self
        }

        /// Parse the textual plan grammar of the module docs.
        ///
        /// # Errors
        /// [`Error::BadInput`] naming the offending entry.
        pub fn parse(text: &str) -> Result<Self, Error> {
            let mut plan = Self::default();
            for raw in text.split(';') {
                let raw = raw.trim();
                if raw.is_empty() {
                    continue;
                }
                let (key, value) = raw.split_once('=').ok_or_else(|| {
                    Error::BadInput(format!("fault plan entry '{raw}' is missing '='"))
                })?;
                if key == "seed" {
                    plan.seed = value.parse().map_err(|_| {
                        Error::BadInput(format!("fault plan seed '{value}' is not a u64"))
                    })?;
                    continue;
                }
                let (action_text, trigger_text) = match value.split_once('@') {
                    Some((a, t)) => (a, t),
                    None => (value, ""),
                };
                let action = parse_action(action_text)
                    .ok_or_else(|| bad_entry(raw, "unknown action", action_text))?;
                // validate the trigger now so a bad plan fails loudly
                // at install time, not silently at the first hit
                parse_trigger(trigger_text)
                    .ok_or_else(|| bad_entry(raw, "unknown trigger", trigger_text))?;
                plan.entries.push((key.to_string(), action, trigger_text.to_string()));
            }
            Ok(plan)
        }

        fn arm(&self) -> Vec<Entry> {
            self.entries
                .iter()
                .map(|(site, action, trigger)| Entry {
                    site: site.clone(),
                    action: *action,
                    trigger: parse_trigger(trigger).expect("validated at parse/entry time"),
                    hits: 0,
                    rng: (self.seed ^ fnv(site)) | 1,
                })
                .collect()
        }
    }

    fn bad_entry(raw: &str, what: &str, part: &str) -> Error {
        Error::BadInput(format!("fault plan entry '{raw}': {what} '{part}'"))
    }

    fn parse_action(text: &str) -> Option<FaultAction> {
        if text == "panic" {
            return Some(FaultAction::Panic);
        }
        if text == "io" {
            return Some(FaultAction::Io);
        }
        let ms = text.strip_prefix("delay:")?.strip_suffix("ms")?;
        Some(FaultAction::Delay(Duration::from_millis(ms.parse().ok()?)))
    }

    fn parse_trigger(text: &str) -> Option<Trigger> {
        if text.is_empty() || text == "always" {
            return Some(Trigger::Always);
        }
        if let Some(n) = text.strip_prefix("every") {
            let n: u64 = n.parse().ok()?;
            return (n > 0).then_some(Trigger::Every(n));
        }
        if let Some(n) = text.strip_prefix("first") {
            return Some(Trigger::First(n.parse().ok()?));
        }
        if let Some(p) = text.strip_prefix('p') {
            let p: f64 = p.parse().ok()?;
            return (0.0..=1.0).contains(&p).then_some(Trigger::Prob(p));
        }
        None
    }

    /// FNV-1a, the same stable string hash the machine fingerprint
    /// uses — per-site RNG streams must not depend on `DefaultHasher`
    /// internals changing across toolchains.
    fn fnv(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    struct Armed {
        entries: Vec<Entry>,
        fired: BTreeMap<String, u64>,
    }

    fn state() -> &'static Mutex<Option<Armed>> {
        static STATE: OnceLock<Mutex<Option<Armed>>> = OnceLock::new();
        STATE.get_or_init(|| {
            // first touch of the process: arm the env-supplied plan,
            // if any (a malformed plan must abort the chaos run, not
            // silently run fault-free)
            let armed = std::env::var("ANATOMY_FAULT_PLAN").ok().map(|text| {
                let plan =
                    FaultPlan::parse(&text).unwrap_or_else(|e| panic!("ANATOMY_FAULT_PLAN: {e}"));
                Armed { entries: plan.arm(), fired: BTreeMap::new() }
            });
            Mutex::new(armed)
        })
    }

    /// Install `plan`, replacing any active plan (including one armed
    /// from `ANATOMY_FAULT_PLAN`) and zeroing the fire counters.
    pub fn install(plan: &FaultPlan) {
        *state().lock().unwrap() = Some(Armed { entries: plan.arm(), fired: BTreeMap::new() });
    }

    /// Disarm every fault point (fire counters are kept until the
    /// next [`install`]).
    pub fn clear() {
        if let Some(armed) = state().lock().unwrap().as_mut() {
            armed.entries.clear();
        }
    }

    /// Whether any fault plan is currently armed.
    pub fn active() -> bool {
        state().lock().unwrap().as_ref().is_some_and(|a| !a.entries.is_empty())
    }

    /// How many times `site` has fired an action since the last
    /// [`install`].
    pub fn fired(site: &str) -> u64 {
        state().lock().unwrap().as_ref().and_then(|a| a.fired.get(site).copied()).unwrap_or(0)
    }

    /// `(site, fires)` for every site that has fired since the last
    /// [`install`].
    pub fn fire_counts() -> Vec<(String, u64)> {
        state()
            .lock()
            .unwrap()
            .as_ref()
            .map(|a| a.fired.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default()
    }

    /// Decide this hit's action for `site` (bumping counters) without
    /// yet executing it — the panic/sleep must happen *outside* the
    /// state lock or a fault point could deadlock the process it is
    /// trying to test.
    fn decide(site: &str) -> Option<FaultAction> {
        let mut guard = state().lock().unwrap();
        let armed = guard.as_mut()?;
        let mut fire: Option<FaultAction> = None;
        for entry in armed.entries.iter_mut().filter(|e| e.site == site) {
            entry.hits += 1;
            let fires = match entry.trigger {
                Trigger::Always => true,
                Trigger::Every(n) => entry.hits.is_multiple_of(n),
                Trigger::First(n) => entry.hits <= n,
                Trigger::Prob(p) => {
                    ((xorshift(&mut entry.rng) >> 11) as f64 / (1u64 << 53) as f64) < p
                }
            };
            if fires {
                fire = Some(entry.action);
                break;
            }
        }
        if fire.is_some() {
            *armed.fired.entry(site.to_string()).or_insert(0) += 1;
        }
        fire
    }

    /// Hit the named fault point: consult the armed plan and panic or
    /// sleep if an entry fires (`io` entries are ignored here — a
    /// plain point has no error channel).
    pub fn point(site: &str) {
        match decide(site) {
            Some(FaultAction::Panic) => panic!("injected fault at {site}"),
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::Io) | None => {}
        }
    }

    /// Hit the named fault point on an I/O path: as [`point`], but
    /// `io` entries return an injected
    /// [`ConnectionReset`](std::io::ErrorKind::ConnectionReset) error.
    pub fn io_point(site: &str) -> std::io::Result<()> {
        match decide(site) {
            Some(FaultAction::Panic) => panic!("injected fault at {site}"),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultAction::Io) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                format!("injected fault at {site}"),
            )),
            None => Ok(()),
        }
    }
}

pub use imp::*;
