//! # anatomy
//!
//! A from-scratch Rust reproduction of *Anatomy of High-Performance
//! Deep Learning Convolutions on SIMD Architectures* (Georganas et
//! al., SC 2018): JIT-compiled direct-convolution kernels, the
//! kernel-streams dryrun/replay execution framework, layer fusion,
//! duality-based backward propagation, bandwidth-balanced weight
//! updates, int16 (VNNI) kernels, and the GxM graph executor with
//! simulated multi-node data parallelism.
//!
//! This root crate re-exports the workspace so examples and downstream
//! users can depend on one name:
//!
//! ```
//! use anatomy::conv::{ConvLayer, LayerOptions};
//! use anatomy::tensor::ConvShape;
//!
//! let shape = ConvShape::new(1, 32, 32, 8, 8, 3, 3, 1, 1);
//! let layer = ConvLayer::new(shape, LayerOptions::new(2));
//! assert!(layer.blocking().rbq >= 8);
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use baselines;
pub use conv;
pub use gxm;
pub use jit;
pub use machine;
pub use microkernel;
pub use parallel;
pub use smallgemm;
pub use tensor;
pub use topologies;
