//! # anatomy
//!
//! A from-scratch Rust reproduction of *Anatomy of High-Performance
//! Deep Learning Convolutions on SIMD Architectures* (Georganas et
//! al., SC 2018): JIT-compiled direct-convolution kernels, the
//! kernel-streams dryrun/replay execution framework, layer fusion,
//! duality-based backward propagation, bandwidth-balanced weight
//! updates, int16 (VNNI) kernels, and the GxM graph executor with
//! simulated multi-node data parallelism.
//!
//! This root crate re-exports the workspace so examples and downstream
//! users can depend on one name:
//!
//! ```
//! use anatomy::conv::{ConvLayer, LayerOptions};
//! use anatomy::tensor::ConvShape;
//!
//! let shape = ConvShape::new(1, 32, 32, 8, 8, 3, 3, 1, 1);
//! let layer = ConvLayer::new(shape, LayerOptions::new(2));
//! assert!(layer.blocking().rbq >= 8);
//! ```
//!
//! On top of the re-exports it adds the serving surface:
//!
//! * [`InferenceSession`] — one forward-only network behind a shared
//!   thread pool and layer-plan cache, `run(batch) → outputs`;
//! * [`serve::BatchingFrontend`] — a multi-client micro-batching
//!   front-end over several session replicas (see the [`serve`]
//!   module docs);
//! * [`daemon::Daemon`] — `anatomy-serve`, the network-facing
//!   multi-model daemon: a TCP listener speaking a length-prefixed
//!   binary protocol (`docs/PROTOCOL.md`) with admission control and
//!   zero-downtime weight hot-swap (see the [`daemon`] module docs
//!   and the README's operator guide);
//! * [`fault`] — deterministic fault injection for the serving stack:
//!   named fault points compiled to no-ops by default and armed by a
//!   seeded plan under `--features chaos` (DESIGN.md §13).
//!
//! The model surface is typed (DESIGN.md §8): sessions take anything
//! [`IntoModelSpec`] — a validated [`ModelSpec`], a [`GraphBuilder`]
//! chain, or legacy topology text — every failure is a structured
//! [`Error`], and trained weights travel through [`StateDict`]s for
//! the train → save → load → serve round trip.
//!
//! See `DESIGN.md` for the system inventory and the per-experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.

#![deny(missing_docs)]

pub use baselines;
pub use conv;
pub use gxm;
pub use jit;
pub use machine;
pub use microkernel;
pub use parallel;
pub use smallgemm;
pub use tensor;
pub use topologies;

pub use conv::{Precision, TuneLevel};
pub use gxm::{ConvOpts, Error, GraphBuilder, IntoModelSpec, ModelSpec, StateDict};

pub mod daemon;
pub mod fault;
pub mod serve;

use std::sync::Arc;

/// One batch's worth of inference results.
#[derive(Clone, Debug)]
pub struct InferenceOutput {
    /// Softmax probabilities, `samples × classes` row-major (dense,
    /// without SIMD-lane padding).
    pub probs: Vec<f32>,
    /// Arg-max class per sample.
    pub top1: Vec<usize>,
}

/// The serving entry point: a forward-only network behind a shared
/// thread pool and a shared layer-plan cache.
///
/// A session owns an [`gxm::ExecMode::Inference`] network — no
/// gradient, momentum or backward-scratch allocation, activation
/// buffers recycled via the liveness memory plan — and exposes a
/// `run(batch) → outputs` loop. Several sessions (e.g. one per model,
/// or one per minibatch size) can share one pool and one cache so
/// repeated layer shapes JIT once per process.
///
/// Constructors take anything [`IntoModelSpec`]: a validated
/// [`ModelSpec`], a [`GraphBuilder`], or legacy topology text.
///
/// ```
/// use anatomy::{ConvOpts, GraphBuilder, InferenceSession};
///
/// let model = GraphBuilder::new()
///     .input("data", 3, 8, 8)
///     .conv("c1", ConvOpts::k(16).rs(3).pad(1).bias().relu())
///     .gap("g")
///     .fc("logits", 4)
///     .softmax("loss")
///     .build()
///     .unwrap();
/// let mut session = InferenceSession::new(&model, 2, 2).unwrap();
/// let batch = vec![0.5f32; 2 * 3 * 8 * 8];
/// let out = session.run(&batch).unwrap();
/// assert_eq!(out.top1.len(), 2);
/// assert_eq!(out.probs.len(), 2 * session.classes());
///
/// // partial batches pad the tail internally and return exactly
/// // `count` results:
/// let one = session.run_samples(&batch[..session.sample_elems()], 1).unwrap();
/// assert_eq!(one.top1.len(), 1);
/// assert_eq!(one.top1[0], out.top1[0]);
///
/// // wrong-sized payloads are typed errors, not panics:
/// assert!(session.run(&batch[..7]).is_err());
/// ```
pub struct InferenceSession {
    net: gxm::Network,
    pool: Arc<parallel::ThreadPool>,
    cache: conv::PlanCache,
}

impl InferenceSession {
    /// Build a session with a private pool and cache.
    ///
    /// The served network runs the inference BN fusion pass: every
    /// `Conv → Bn (→ eltwise-add → ReLU)` subgraph executes as one
    /// fused convolution with the BN's frozen running statistics
    /// folded into weights and bias, and any BN that cannot fold
    /// still normalizes with frozen statistics — so bn-graph
    /// predictions are independent of batch composition.
    pub fn new(model: impl IntoModelSpec, minibatch: usize, threads: usize) -> Result<Self, Error> {
        if threads == 0 {
            return Err(Error::BadInput("threads must be >= 1".to_string()));
        }
        Self::with_shared(
            model,
            minibatch,
            Arc::new(parallel::ThreadPool::new(threads)),
            conv::PlanCache::new(),
        )
    }

    /// Build a session with the BN fusion pass *disabled*: every BN
    /// runs as a standalone frozen-stats pass. Same predictions as
    /// [`Self::new`] up to fold-rounding — this is the unfused
    /// reference the fused executor is benchmarked and tested
    /// against, not a serving configuration.
    pub fn new_unfused(
        model: impl IntoModelSpec,
        minibatch: usize,
        threads: usize,
    ) -> Result<Self, Error> {
        if threads == 0 {
            return Err(Error::BadInput("threads must be >= 1".to_string()));
        }
        Self::build(
            model,
            minibatch,
            Arc::new(parallel::ThreadPool::new(threads)),
            conv::PlanCache::new(),
            false,
            TuneLevel::Heuristic,
            Precision::F32,
        )
    }

    /// Build a session sharing `pool` and `cache` with other sessions
    /// (the cache dedupes JIT + dryrun work across all of them).
    pub fn with_shared(
        model: impl IntoModelSpec,
        minibatch: usize,
        pool: Arc<parallel::ThreadPool>,
        cache: conv::PlanCache,
    ) -> Result<Self, Error> {
        Self::build(model, minibatch, pool, cache, true, TuneLevel::Heuristic, Precision::F32)
    }

    /// [`Self::with_shared`] with the plan-time autotuner enabled:
    /// every convolution's blocking is chosen at `tune` level
    /// (model-ranked search, optionally micro-bench-measured on
    /// `pool`), with winners memoized in `cache` so replicas and
    /// repeated builds never re-tune. See [`conv::tune`].
    pub fn with_shared_tuned(
        model: impl IntoModelSpec,
        minibatch: usize,
        pool: Arc<parallel::ThreadPool>,
        cache: conv::PlanCache,
        tune: TuneLevel,
    ) -> Result<Self, Error> {
        Self::build(model, minibatch, pool, cache, true, tune, Precision::F32)
    }

    /// [`Self::with_shared_tuned`] with the numeric execution mode made
    /// explicit. At [`Precision::Int8`] every convolution whose input
    /// range is derivable (from folded-BN statistics, or measured via
    /// [`Self::calibrate`]) executes the paper's Section II-K
    /// reduced-precision path — quantize → int8/VNNI convolution →
    /// fused requantize — while underivable nodes fall back to their
    /// f32 plans (DESIGN.md §11). [`Precision::F32`] is exactly
    /// [`Self::with_shared_tuned`].
    pub fn with_shared_quantized(
        model: impl IntoModelSpec,
        minibatch: usize,
        pool: Arc<parallel::ThreadPool>,
        cache: conv::PlanCache,
        tune: TuneLevel,
        precision: Precision,
    ) -> Result<Self, Error> {
        Self::build(model, minibatch, pool, cache, true, tune, precision)
    }

    fn build(
        model: impl IntoModelSpec,
        minibatch: usize,
        pool: Arc<parallel::ThreadPool>,
        cache: conv::PlanCache,
        fold_bn: bool,
        tune: TuneLevel,
        precision: Precision,
    ) -> Result<Self, Error> {
        let spec = model.into_model_spec()?;
        let net = gxm::Network::build_quantized(
            &spec,
            minibatch,
            Arc::clone(&pool),
            gxm::ExecMode::Inference,
            &cache,
            fold_bn,
            tune,
            precision,
        )?;
        Ok(Self { net, pool, cache })
    }

    /// Load trained parameters (a [`StateDict`] exported by
    /// [`gxm::Network::state_dict`]) into the served network. Forward
    /// outputs afterwards are bit-identical to the network the dict
    /// was saved from — the serve half of train → save → load → serve.
    pub fn load_state_dict(&mut self, sd: &StateDict) -> Result<(), Error> {
        self.net.load_state_dict(sd)
    }

    /// Run one full batch (`minibatch × c × h × w` NCHW f32) and return
    /// the softmax probabilities and top-1 predictions.
    ///
    /// # Errors
    /// [`Error::BadInput`] when `batch` is not exactly
    /// `minibatch × c × h × w` values.
    pub fn run(&mut self, batch: &[f32]) -> Result<InferenceOutput, Error> {
        let want = self.net.minibatch() * self.sample_elems();
        if batch.len() != want {
            return Err(Error::BadInput(format!(
                "batch must be minibatch × c × h × w = {want} f32 values, got {}",
                batch.len()
            )));
        }
        self.run_samples(batch, self.net.minibatch())
    }

    /// Run `count <= minibatch` samples (`count × c × h × w` NCHW f32),
    /// padding the unused tail of the planned batch with zeros, and
    /// return exactly `count` results.
    ///
    /// This is the primitive a batching front-end flushes partial
    /// batches through: the kernels always execute at the planned
    /// minibatch (replaying the recorded streams unchanged), only the
    /// load and the result extraction are `count`-sized.
    ///
    /// # Errors
    /// [`Error::BadInput`] when `count` is 0 or exceeds the planned
    /// minibatch, or when `samples` is not `count × c × h × w` values.
    pub fn run_samples(&mut self, samples: &[f32], count: usize) -> Result<InferenceOutput, Error> {
        if count == 0 || count > self.net.minibatch() {
            return Err(Error::BadInput(format!(
                "count must be in 1..={}, got {count}",
                self.net.minibatch()
            )));
        }
        if samples.len() != count * self.sample_elems() {
            return Err(Error::BadInput(format!(
                "samples must be count × c × h × w = {} f32 values, got {}",
                count * self.sample_elems(),
                samples.len()
            )));
        }
        self.net.load_input_nchw(samples, count);
        self.net.forward();
        let classes = self.net.classes;
        let padded = self.net.probabilities();
        let kpad = padded.len() / self.net.minibatch();
        let mut probs = Vec::with_capacity(count * classes);
        let mut top1 = Vec::with_capacity(count);
        for n in 0..count {
            let row = &padded[n * kpad..n * kpad + classes];
            probs.extend_from_slice(row);
            let best =
                row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
            top1.push(best);
        }
        Ok(InferenceOutput { probs, top1 })
    }

    /// Feed `count` representative samples (`count × c × h × w` NCHW
    /// f32) through the network in calibration mode: every batch runs
    /// the *f32* plans while per-channel activation maxima are
    /// recorded at each node, then the int8 convolutions requantize
    /// their weights against the measured ranges. Calibration widens
    /// int8 coverage — convolutions whose input range was underivable
    /// from BN statistics join the quantized path — and tightens the
    /// scales of those already on it (DESIGN.md §11).
    ///
    /// `count` may exceed the planned minibatch; samples are chunked
    /// into full-or-partial batches and the recorded maxima accumulate
    /// across all of them. No-op data-wise at [`Precision::F32`]
    /// (rejected with [`Error::BadInput`] so a misconfigured pipeline
    /// is caught loudly).
    ///
    /// # Errors
    /// [`Error::BadInput`] when the session is not int8, `count` is 0,
    /// or `samples` is not `count × c × h × w` values.
    pub fn calibrate(&mut self, samples: &[f32], count: usize) -> Result<(), Error> {
        if self.net.precision() != Precision::Int8 {
            return Err(Error::BadInput(
                "calibrate requires an int8-precision session".to_string(),
            ));
        }
        if count == 0 {
            return Err(Error::BadInput("calibration needs at least one sample".to_string()));
        }
        let se = self.sample_elems();
        if samples.len() != count * se {
            return Err(Error::BadInput(format!(
                "samples must be count × c × h × w = {} f32 values, got {}",
                count * se,
                samples.len()
            )));
        }
        let mb = self.net.minibatch();
        let mut done = 0;
        while done < count {
            let take = (count - done).min(mb);
            self.net.load_input_nchw(&samples[done * se..(done + take) * se], take);
            self.net.calibrate_batch();
            done += take;
        }
        Ok(())
    }

    /// The session's numeric execution mode.
    pub fn precision(&self) -> Precision {
        self.net.precision()
    }

    /// Number of convolution nodes in the served graph.
    pub fn conv_node_count(&self) -> usize {
        self.net.conv_node_count()
    }

    /// Number of convolutions currently executing the int8 path (0 at
    /// f32 precision); `quantized_conv_count / conv_node_count` is the
    /// int8 coverage the inference benchmark reports.
    pub fn quantized_conv_count(&self) -> usize {
        self.net.quantized_conv_count()
    }

    /// Class count of the model's softmax head.
    pub fn classes(&self) -> usize {
        self.net.classes
    }

    /// The session's batch size.
    pub fn minibatch(&self) -> usize {
        self.net.minibatch()
    }

    /// Elements per sample (`c × h × w` of the input node) — the unit
    /// a front-end slices client payloads by.
    pub fn sample_elems(&self) -> usize {
        let (c, h, w) = self.net.input_dims();
        c * h * w
    }

    /// Logical `(c, h, w)` of the model's input.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        self.net.input_dims()
    }

    /// The shared thread pool (hand it to further sessions).
    pub fn pool(&self) -> &Arc<parallel::ThreadPool> {
        &self.pool
    }

    /// The shared plan cache (hand it to further sessions).
    pub fn cache(&self) -> &conv::PlanCache {
        &self.cache
    }

    /// Plan-cache counters (hit rate is the serving-path health metric).
    pub fn cache_stats(&self) -> conv::PlanCacheStats {
        self.cache.stats()
    }

    /// The underlying forward-only network (introspection).
    pub fn network(&self) -> &gxm::Network {
        &self.net
    }
}
