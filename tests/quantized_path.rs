//! Tier-1 end-to-end f32-vs-int8 parity: train a small bn-network,
//! serve the trained weights at both precisions — through the
//! [`BatchingFrontend`] exactly as a client would — and require the
//! quantized path to agree with the f32 oracle (same top-1, bounded
//! probability drift), plus the determinism the serving layer
//! documents: an int8 single-image submit is bit-identical to the
//! same sample inside a full batch.

use anatomy::gxm::{parse_topology, ExecMode, ModelSpec, Network};
use anatomy::serve::{BatchingFrontend, ServeConfig};
use anatomy::tensor::rng::SplitMix64;
use anatomy::tensor::Norms;
use anatomy::{InferenceSession, Precision, StateDict, TuneLevel};
use std::sync::Arc;
use std::time::Duration;

const MB: usize = 4;

/// A residual bn-graph with a non-lane-multiple input (c=3): c0 feeds
/// from the raw input (range known only by convention), c1/c2 from
/// folded BNs, and b2 carries the eltwise residual — together the
/// derivable, calibrated and fallback quantization boundaries.
fn spec() -> ModelSpec {
    parse_topology(
        "input name=data c=3 h=8 w=8\n\
         conv name=c0 bottom=data k=16\n\
         bn name=b0 bottom=c0 relu=1\n\
         conv name=c1 bottom=b0 k=16 r=3 s=3 pad=1\n\
         bn name=b1 bottom=c1 relu=1\n\
         conv name=c2 bottom=b1 k=16 r=3 s=3 pad=1\n\
         bn name=b2 bottom=c2 eltwise=b0 relu=1\n\
         gap name=g bottom=b2\n\
         fc name=logits bottom=g k=8\n\
         softmaxloss name=loss bottom=logits\n",
    )
    .unwrap()
}

/// Train the spec for a few steps so weights, BN running statistics
/// and class preferences are all non-trivial, and return the dict
/// plus a held-out evaluation batch.
fn train() -> (StateDict, Vec<f32>) {
    let pool = Arc::new(anatomy::parallel::ThreadPool::new(2));
    let cache = anatomy::conv::PlanCache::new();
    let nl = spec();
    let mut net = Network::build_with(&nl, MB, pool, ExecMode::Training, &cache).unwrap();
    let mut rng = SplitMix64::new(97);
    let mut input = vec![0.0f32; MB * 3 * 8 * 8];
    let labels: Vec<usize> = (0..MB).collect();
    for _ in 0..6 {
        rng.fill_f32(&mut input);
        net.load_input_nchw(&input, MB);
        net.train_step(&labels, 0.05, 0.9);
    }
    let mut eval = vec![0.0f32; input.len()];
    SplitMix64::new(1234).fill_f32(&mut eval);
    (net.state_dict(), eval)
}

fn frontend(sd: &StateDict, precision: Precision, calib: &[f32]) -> BatchingFrontend {
    let mut cfg = ServeConfig::new(1, 2, MB)
        .with_max_wait(Duration::from_millis(1))
        .with_pinning(false)
        .with_precision(precision);
    if precision == Precision::Int8 {
        cfg = cfg.with_calibration(calib.to_vec());
    }
    BatchingFrontend::with_weights(spec(), cfg, sd).unwrap()
}

#[test]
fn served_int8_agrees_with_served_f32() {
    let (sd, eval) = train();
    // calibrate on a batch drawn from the training distribution, not
    // the evaluation batch — the scales must generalize
    let mut calib = vec![0.0f32; eval.len()];
    SplitMix64::new(555).fill_f32(&mut calib);

    let f32_fe = frontend(&sd, Precision::F32, &calib);
    let int8_fe = frontend(&sd, Precision::Int8, &calib);
    assert_eq!(f32_fe.precision(), Precision::F32);
    assert_eq!(int8_fe.precision(), Precision::Int8);

    let of = f32_fe.infer(&eval).unwrap();
    let oq = int8_fe.infer(&eval).unwrap();
    assert_eq!(of.top1.len(), MB);
    assert_eq!(
        of.top1, oq.top1,
        "trained-net top-1 predictions must survive quantization\nf32 probs: {:?}\nint8 probs: {:?}",
        of.probs, oq.probs
    );
    let n = Norms::compare(&of.probs, &oq.probs);
    assert!(n.ok(0.05), "int8 probability drift exceeds 5% relative L2: {n}");

    f32_fe.shutdown();
    int8_fe.shutdown();
}

#[test]
fn int8_single_image_is_bit_identical_to_its_batch_slot() {
    let (sd, eval) = train();
    let mut calib = vec![0.0f32; eval.len()];
    SplitMix64::new(555).fill_f32(&mut calib);

    // direct session: one full batch vs each sample alone — the batch
    // dimension is the outermost loop of every kernel and per-channel
    // quantization is per-sample, so results must match bit for bit
    let pool = Arc::new(anatomy::parallel::ThreadPool::new(2));
    let cache = anatomy::conv::PlanCache::new();
    let mut session = InferenceSession::with_shared_quantized(
        spec(),
        MB,
        pool,
        cache,
        TuneLevel::Heuristic,
        Precision::Int8,
    )
    .unwrap();
    session.load_state_dict(&sd).unwrap();
    session.calibrate(&calib, MB).unwrap();
    assert_eq!(session.precision(), Precision::Int8);
    assert_eq!(
        session.quantized_conv_count(),
        session.conv_node_count(),
        "calibration must put every conv of the bn-graph on the int8 path"
    );

    let se = session.sample_elems();
    let classes = session.classes();
    let batch = session.run(&eval).unwrap();
    for i in 0..MB {
        let one = session.run_samples(&eval[i * se..(i + 1) * se], 1).unwrap();
        assert_eq!(one.top1[0], batch.top1[i], "sample {i}");
        let batch_bits: Vec<u32> =
            batch.probs[i * classes..(i + 1) * classes].iter().map(|p| p.to_bits()).collect();
        let one_bits: Vec<u32> = one.probs.iter().map(|p| p.to_bits()).collect();
        assert_eq!(one_bits, batch_bits, "sample {i}: single-image run drifted from batch slot");
    }

    // and through the frontend: a lone deadline-flushed submit lands
    // in a padded batch yet returns the same bits as the direct run
    let fe = frontend(&sd, Precision::Int8, &calib);
    for i in 0..MB {
        let served = fe.infer(&eval[i * se..(i + 1) * se]).unwrap();
        let direct = session.run_samples(&eval[i * se..(i + 1) * se], 1).unwrap();
        let a: Vec<u32> = served.probs.iter().map(|p| p.to_bits()).collect();
        let b: Vec<u32> = direct.probs.iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b, "sample {i}: served int8 result drifted from the direct session");
    }
    fe.shutdown();
}
