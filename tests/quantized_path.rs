//! Cross-crate integration: the int16 reduced-precision path against
//! the f32 path through quantize → conv → dequantize.

use anatomy::conv::fuse::FuseCtx;
use anatomy::conv::quant::QuantFwdPlan;
use anatomy::conv::{Backend, ConvLayer, LayerOptions};
use anatomy::parallel::ThreadPool;
use anatomy::tensor::vnni::BlockedI32;
use anatomy::tensor::{BlockedActs, BlockedFilter, ConvShape, Norms, VnniActs, VnniFilter};

#[test]
fn quantized_conv_approximates_f32_conv() {
    let shape = ConvShape::new(2, 32, 32, 10, 10, 3, 3, 1, 1);
    let threads = 4;
    let pool = ThreadPool::new(threads);

    // f32 ground truth
    let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 1);
    let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);
    let layer = ConvLayer::new(shape, LayerOptions::new(threads));
    let mut y = layer.new_output();
    layer.forward(&pool, &x, &w, &mut y, &FuseCtx::default());

    // quantize → int16 conv → dequantize
    let (sx, sw) = (1.0 / 512.0, 1.0 / 512.0);
    let xq = VnniActs::quantize(&x, sx);
    let wq = VnniFilter::quantize(&w, sw);
    let plan = QuantFwdPlan::new(shape, threads, Backend::Auto, true, 4, None);
    let mut yq = BlockedI32::zeros(shape.n, shape.k, shape.p(), shape.q());
    plan.run(&pool, &xq, &wq, &mut yq);
    let y16 = yq.dequantize(sx * sw);

    let n = Norms::compare(y.as_slice(), y16.as_slice());
    // quantization noise, not kernel error: relative L2 well under 1%
    assert!(n.l2_rel < 0.01, "{n}");
}

#[test]
fn chain_limit_trades_no_accuracy() {
    // the paper's restricted accumulation chain is exact in int32
    let shape = ConvShape::new(1, 128, 16, 6, 6, 1, 1, 1, 0);
    let pool = ThreadPool::new(2);
    let xq = VnniActs::random(1, 128, 6, 6, 0, 3);
    let wq = VnniFilter::random(16, 128, 1, 1, 4);
    let mut reference: Option<Vec<i32>> = None;
    for chain in [1usize, 2, 8] {
        let plan = QuantFwdPlan::new(shape, 2, Backend::Auto, false, chain, None);
        let mut out = BlockedI32::zeros(1, 16, 6, 6);
        plan.run(&pool, &xq, &wq, &mut out);
        match &reference {
            None => reference = Some(out.as_slice().to_vec()),
            Some(r) => assert_eq!(r, &out.as_slice().to_vec(), "chain={chain}"),
        }
    }
}
