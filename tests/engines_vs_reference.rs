//! Cross-crate integration: the optimized engines, every baseline and
//! the quantized path against the naive references, over a property
//! -sampled shape space.

use anatomy::baselines::all_baselines;
use anatomy::conv::fuse::FuseCtx;
use anatomy::conv::reference::{conv_bwd_ref, conv_fwd_ref, conv_upd_ref};
use anatomy::conv::{ConvLayer, LayerOptions};
use anatomy::parallel::ThreadPool;
use anatomy::tensor::{BlockedActs, BlockedFilter, ConvShape, Kcrs, Nchw, Norms};
use proptest::prelude::*;

fn check_all(shape: ConvShape, threads: usize) {
    let pool = ThreadPool::new(threads);
    let layer = ConvLayer::new(shape, LayerOptions::new(threads));
    let x = Nchw::random(shape.n, shape.c, shape.h, shape.w, 1);
    let w = Kcrs::random(shape.k, shape.c, shape.r, shape.s, 2);
    let gy = Nchw::random(shape.n, shape.k, shape.p(), shape.q(), 3);
    let xb = BlockedActs::from_nchw(&x, shape.pad);
    let wb = BlockedFilter::from_kcrs(&w);
    let gyb = BlockedActs::from_nchw(&gy, layer.dout_pad());

    // forward: engine + all baselines
    let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
    conv_fwd_ref(&shape, &x, &w, &mut y_ref);
    let y_ref_b = BlockedActs::from_nchw(&y_ref, 0);
    let mut yb = layer.new_output();
    layer.forward(&pool, &xb, &wb, &mut yb, &FuseCtx::default());
    let n = Norms::compare(y_ref_b.as_slice(), yb.as_slice());
    assert!(n.ok(1e-4), "engine fwd {shape}: {n}");
    for b in all_baselines(shape, threads) {
        yb.zero();
        b.forward(&pool, &xb, &wb, &mut yb);
        let n = Norms::compare(y_ref_b.as_slice(), yb.as_slice());
        assert!(n.ok(1e-3), "{} fwd {shape}: {n}", b.name());
    }

    // backward
    let mut gx_ref = Nchw::zeros(shape.n, shape.c, shape.h, shape.w);
    conv_bwd_ref(&shape, &gy, &w, &mut gx_ref);
    let mut gxb = layer.new_input();
    layer.backward(&pool, &gyb, &wb, &mut gxb);
    let n = Norms::compare(gx_ref.as_slice(), gxb.to_nchw().as_slice());
    assert!(n.ok(1e-4), "engine bwd {shape}: {n}");

    // update
    let mut dw_ref = Kcrs::zeros(shape.k, shape.c, shape.r, shape.s);
    conv_upd_ref(&shape, &x, &gy, &mut dw_ref);
    let mut dwb = layer.new_filter();
    layer.update(&pool, &xb, &gyb, &mut dwb);
    let n = Norms::compare(dw_ref.as_slice(), dwb.to_kcrs().as_slice());
    assert!(n.ok(1e-3), "engine upd {shape}: {n}");
}

#[test]
fn resnet_table_shapes_reduced() {
    // all 20 Table I geometries at reduced spatial size / minibatch 2
    for (id, full) in anatomy::topologies::resnet50_table1(2) {
        let hw = (full.h / 4).max(full.r);
        let shape = ConvShape::new(
            2,
            full.c.min(64),
            full.k.min(64),
            hw,
            hw,
            full.r,
            full.s,
            full.stride,
            full.pad,
        );
        check_all(shape, 4);
        let _ = id;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random geometry sweep: every pass of every engine agrees with
    /// the naive loop nests.
    #[test]
    fn random_shapes_agree(
        n in 1usize..3,
        cb in 1usize..3,
        kb in 1usize..3,
        hw in 4usize..12,
        rs in prop::sample::select(vec![1usize, 3]),
        stride in 1usize..3,
        threads in 1usize..5,
    ) {
        let pad = rs / 2;
        prop_assume!(hw + 2 * pad >= rs);
        let shape = ConvShape::new(n, cb * 16, kb * 16, hw, hw, rs, rs, stride, pad);
        prop_assume!(shape.p() > 0 && shape.q() > 0);
        check_all(shape, threads);
    }
}
