//! Inference-mode acceptance tests on the real paper topologies:
//!
//! * building ResNet-50 through a shared [`conv::PlanCache`] performs
//!   one JIT + dryrun per *distinct* layer shape (the distinct count
//!   is recomputed here independently of the executor),
//! * an `ExecMode::Inference` network allocates zero gradient blobs
//!   and zero training-state bytes; its forward runs the BN fusion
//!   pass (frozen running statistics folded into the conv weights)
//!   and tracks the *unfused frozen-stats reference forward* within a
//!   bit-tolerance bound — the parity that stays meaningful now that
//!   inference no longer shares batch statistics with training,
//! * fused (folded) and unfused inference plans never collide in the
//!   shared plan cache,
//! * the `InferenceSession` facade serves batches end to end.

use anatomy::conv::PlanCache;
use anatomy::gxm::{parse_topology, ExecMode, Network, NodeSpec};
use anatomy::parallel::ThreadPool;
use anatomy::tensor::rng::SplitMix64;
use anatomy::tensor::ConvShape;
use anatomy::InferenceSession;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Count the distinct normalized conv layers of a topology the same
/// way a cache key sees them — (ConvShape, input blob padding) — but
/// computed directly from the node list, independent of `gxm`'s plan
/// phase. (The graph convolutions carry no fused ops; BN owns those.)
fn distinct_conv_layers(nl: &[NodeSpec], minibatch: usize) -> usize {
    let mut dims: HashMap<&str, (usize, usize, usize)> = HashMap::new(); // name -> (c, h, w)
    let mut blob_pad: HashMap<&str, usize> = HashMap::new();
    // consumer padding first: blob pad = max pad over conv consumers
    for n in nl {
        if let NodeSpec::Conv { bottom, pad, .. } = n {
            let e = blob_pad.entry(bottom.as_str()).or_insert(0);
            *e = (*e).max(*pad);
        }
    }
    let mut shapes: HashSet<(ConvShape, usize)> = HashSet::new();
    for n in nl {
        match n {
            NodeSpec::Input { name, c, h, w, .. } => {
                dims.insert(name, (*c, *h, *w));
            }
            NodeSpec::Conv { name, bottom, k, r, s, stride, pad, .. } => {
                let (bc, bh, bw) = dims[bottom.as_str()];
                let shape = ConvShape::new(minibatch, bc, *k, bh, bw, *r, *s, *stride, *pad);
                let input_pad = blob_pad.get(bottom.as_str()).copied().unwrap_or(0);
                shapes.insert((shape, input_pad));
                dims.insert(name, (*k, shape.p(), shape.q()));
            }
            NodeSpec::Bn { name, bottom, .. } => {
                let d = dims[bottom.as_str()];
                dims.insert(name, d);
            }
            NodeSpec::Pool { name, bottom, size, stride, pad, .. } => {
                let (c, h, w) = dims[bottom.as_str()];
                let oh = (h + 2 * pad - size) / stride + 1;
                let ow = (w + 2 * pad - size) / stride + 1;
                dims.insert(name, (c, oh, ow));
            }
            NodeSpec::GlobalAvgPool { name, bottom, .. } => {
                let (c, _, _) = dims[bottom.as_str()];
                dims.insert(name, (c, 1, 1));
            }
            NodeSpec::Fc { name, k, .. } => {
                dims.insert(name, (*k, 1, 1));
            }
            NodeSpec::Concat { name, bottoms, .. } => {
                let mut c = 0;
                let (mut h, mut w) = (0, 0);
                for b in bottoms {
                    let (cc, hh, ww) = dims[b.as_str()];
                    c += cc;
                    h = hh;
                    w = ww;
                }
                dims.insert(name, (c, h, w));
            }
            NodeSpec::SoftmaxLoss { .. } | NodeSpec::Split { .. } => {}
        }
    }
    shapes.len()
}

#[test]
fn resnet50_builds_once_per_distinct_shape_and_folds_every_bn() {
    let text = anatomy::topologies::resnet50_topology(32, 10);
    let nl = parse_topology(&text).unwrap();
    let convs = nl.nodes().iter().filter(|n| matches!(n, NodeSpec::Conv { .. })).count();
    assert_eq!(convs, 53, "the full ResNet-50 graph");
    let distinct = distinct_conv_layers(nl.nodes(), 2);
    assert!(distinct < convs, "repeats exist: {distinct} distinct of {convs}");

    let cache = PlanCache::new();
    let pool = Arc::new(ThreadPool::new(4));
    let mut train =
        Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
    // one JIT + dryrun per distinct layer shape, not per node
    assert_eq!(
        cache.misses(),
        distinct,
        "cache must build exactly one plan per distinct (shape, input_pad)"
    );
    assert_eq!(cache.hits(), convs - distinct, "every repeat must hit");

    // the inference build rewrites every Conv→Bn subgraph into a fused
    // convolution: its folded plans (different fuse op / output pad)
    // are new cache entries that must never collide with training's
    let mut infer =
        Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
    let misses_after_infer = cache.misses();
    assert!(misses_after_infer > distinct, "folded plans are distinct cache entries");
    assert_eq!(
        infer.folded_bn_count(),
        infer.bn_node_count(),
        "every ResNet-50 BN sits on a pure conv it exclusively consumes: all must fold"
    );
    assert_eq!(infer.bn_node_count(), 53);

    // a second inference build hits every fused plan: zero new JIT
    let _infer2 =
        Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
    assert_eq!(cache.misses(), misses_after_infer, "second inference build must JIT nothing");

    // zero gradient/momentum allocation in inference
    assert_eq!(infer.gradient_blob_count(), 0);
    assert_eq!(infer.training_state_bytes(), 0);
    assert!(train.training_state_bytes() > 0);
    assert!(
        infer.activation_slot_count() < train.activation_slot_count(),
        "liveness plan must share buffers ({} vs {})",
        infer.activation_slot_count(),
        train.activation_slot_count()
    );

    // calibrate the running statistics (training-mode forwards
    // accumulate the EMAs without touching weights) so the frozen
    // normalization matches the network's actual activation scales,
    // then compare the fused executor against the unfused
    // frozen-stats reference forward under the same state dict
    let mut rng = SplitMix64::new(99);
    let mut input = vec![0.0f32; train.input_mut().as_slice().len()];
    rng.fill_f32(&mut input);
    let labels = vec![3usize, 7];
    train.input_mut().as_mut_slice().copy_from_slice(&input);
    for _ in 0..10 {
        train.forward();
    }
    let sd = train.state_dict();
    let mut reference =
        Network::build_with_fold(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache, false)
            .unwrap();
    assert_eq!(reference.folded_bn_count(), 0, "the reference executor keeps BNs standalone");
    infer.load_state_dict(&sd).unwrap();
    reference.load_state_dict(&sd).unwrap();
    infer.set_labels(&labels);
    reference.set_labels(&labels);
    infer.input_mut().as_mut_slice().copy_from_slice(&input);
    reference.input_mut().as_mut_slice().copy_from_slice(&input);
    let sf = infer.forward();
    let su = reference.forward();
    assert_eq!(sf.top1, su.top1, "fused and unfused frozen-stats top-1 must agree");
    let n = anatomy::tensor::Norms::compare(reference.probabilities(), infer.probabilities());
    assert!(n.ok(1e-4), "ResNet-50 fused vs unfused frozen-stats reference: {n}");
}

#[test]
fn inception_fused_inference_tracks_unfused_frozen_reference() {
    let text = anatomy::topologies::inception_v3_topology_sized(63, 10);
    let nl = parse_topology(&text).unwrap();
    let cache = PlanCache::new();
    let pool = Arc::new(ThreadPool::new(4));
    let mut train =
        Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
    let mut infer =
        Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
    let misses_after_infer = cache.misses();
    let mut reference =
        Network::build_with_fold(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache, false)
            .unwrap();
    // unfused inference reuses the training plans: no new JIT
    assert_eq!(cache.misses(), misses_after_infer, "unfused build must JIT nothing new");
    assert_eq!(infer.gradient_blob_count(), 0);
    assert_eq!(infer.training_state_bytes(), 0);
    assert!(infer.folded_bn_count() > 0, "Inception conv→bn chains must fold");

    let mut rng = SplitMix64::new(123);
    let mut input = vec![0.0f32; train.input_mut().as_slice().len()];
    rng.fill_f32(&mut input);
    let labels = vec![1usize, 4];
    // stat calibration: EMAs converge to the init weights' activation
    // statistics without SGD perturbing the weights
    train.input_mut().as_mut_slice().copy_from_slice(&input);
    for _ in 0..10 {
        train.forward();
    }
    let sd = train.state_dict();
    infer.load_state_dict(&sd).unwrap();
    reference.load_state_dict(&sd).unwrap();
    infer.set_labels(&labels);
    reference.set_labels(&labels);
    for step in 0..2 {
        infer.input_mut().as_mut_slice().copy_from_slice(&input);
        reference.input_mut().as_mut_slice().copy_from_slice(&input);
        let sf = infer.forward();
        let su = reference.forward();
        assert_eq!(sf.top1, su.top1, "step {step}");
        let n = anatomy::tensor::Norms::compare(reference.probabilities(), infer.probabilities());
        assert!(n.ok(1e-4), "step {step}: Inception fused vs unfused reference: {n}");
    }
}

#[test]
fn inference_session_serves_batches() {
    let topo = anatomy::topologies::resnet50_topology(32, 10);
    let mut session = InferenceSession::new(&topo, 2, 2).expect("valid topology");
    assert_eq!(session.classes(), 10);
    assert_eq!(session.network().training_state_bytes(), 0);

    let mut rng = SplitMix64::new(5);
    let mut batch = vec![0.0f32; 2 * 3 * 32 * 32];
    let mut first = None;
    for i in 0..3 {
        rng.fill_f32(&mut batch);
        if i == 0 {
            first = Some(batch.clone());
        }
        let out = session.run(&batch).unwrap();
        assert_eq!(out.top1.len(), 2);
        assert_eq!(out.probs.len(), 2 * 10);
        for n in 0..2 {
            let row = &out.probs[n * 10..(n + 1) * 10];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "probabilities must sum to 1, got {sum}");
            assert!(row.iter().all(|p| *p >= 0.0));
        }
    }
    // replaying the first batch reproduces its outputs exactly
    // (recycled buffers hold no hidden state)
    let first = first.unwrap();
    let a = session.run(&first).unwrap();
    let b = session.run(&first).unwrap();
    assert_eq!(a.probs, b.probs);
    assert_eq!(a.top1, b.top1);

    // a second session sharing pool + cache builds without new JIT
    let misses = session.cache_stats().misses;
    let pool = Arc::clone(session.pool());
    let cache = session.cache().clone();
    let mut twin = InferenceSession::with_shared(&topo, 2, pool, cache).unwrap();
    assert_eq!(twin.cache_stats().misses, misses, "shared cache must serve the twin session");
    let out = twin.run(&first).unwrap();
    assert_eq!(out.probs, a.probs, "twin session must reproduce the same outputs");
}
