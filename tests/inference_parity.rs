//! Inference-mode acceptance tests on the real paper topologies:
//!
//! * building ResNet-50 through a shared [`conv::PlanCache`] performs
//!   one JIT + dryrun per *distinct* layer shape (the distinct count
//!   is recomputed here independently of the executor),
//! * an `ExecMode::Inference` network allocates zero gradient blobs
//!   and zero training-state bytes while its forward pass matches the
//!   training-mode network bit-for-bit (loss, top-1, probabilities),
//! * the `InferenceSession` facade serves batches end to end.

use anatomy::conv::PlanCache;
use anatomy::gxm::{parse_topology, ExecMode, Network, NodeSpec};
use anatomy::parallel::ThreadPool;
use anatomy::tensor::rng::SplitMix64;
use anatomy::tensor::ConvShape;
use anatomy::InferenceSession;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Count the distinct normalized conv layers of a topology the same
/// way a cache key sees them — (ConvShape, input blob padding) — but
/// computed directly from the node list, independent of `gxm`'s plan
/// phase. (The graph convolutions carry no fused ops; BN owns those.)
fn distinct_conv_layers(nl: &[NodeSpec], minibatch: usize) -> usize {
    let mut dims: HashMap<&str, (usize, usize, usize)> = HashMap::new(); // name -> (c, h, w)
    let mut blob_pad: HashMap<&str, usize> = HashMap::new();
    // consumer padding first: blob pad = max pad over conv consumers
    for n in nl {
        if let NodeSpec::Conv { bottom, pad, .. } = n {
            let e = blob_pad.entry(bottom.as_str()).or_insert(0);
            *e = (*e).max(*pad);
        }
    }
    let mut shapes: HashSet<(ConvShape, usize)> = HashSet::new();
    for n in nl {
        match n {
            NodeSpec::Input { name, c, h, w, .. } => {
                dims.insert(name, (*c, *h, *w));
            }
            NodeSpec::Conv { name, bottom, k, r, s, stride, pad, .. } => {
                let (bc, bh, bw) = dims[bottom.as_str()];
                let shape = ConvShape::new(minibatch, bc, *k, bh, bw, *r, *s, *stride, *pad);
                let input_pad = blob_pad.get(bottom.as_str()).copied().unwrap_or(0);
                shapes.insert((shape, input_pad));
                dims.insert(name, (*k, shape.p(), shape.q()));
            }
            NodeSpec::Bn { name, bottom, .. } => {
                let d = dims[bottom.as_str()];
                dims.insert(name, d);
            }
            NodeSpec::Pool { name, bottom, size, stride, pad, .. } => {
                let (c, h, w) = dims[bottom.as_str()];
                let oh = (h + 2 * pad - size) / stride + 1;
                let ow = (w + 2 * pad - size) / stride + 1;
                dims.insert(name, (c, oh, ow));
            }
            NodeSpec::GlobalAvgPool { name, bottom, .. } => {
                let (c, _, _) = dims[bottom.as_str()];
                dims.insert(name, (c, 1, 1));
            }
            NodeSpec::Fc { name, k, .. } => {
                dims.insert(name, (*k, 1, 1));
            }
            NodeSpec::Concat { name, bottoms, .. } => {
                let mut c = 0;
                let (mut h, mut w) = (0, 0);
                for b in bottoms {
                    let (cc, hh, ww) = dims[b.as_str()];
                    c += cc;
                    h = hh;
                    w = ww;
                }
                dims.insert(name, (c, h, w));
            }
            NodeSpec::SoftmaxLoss { .. } | NodeSpec::Split { .. } => {}
        }
    }
    shapes.len()
}

#[test]
fn resnet50_builds_once_per_distinct_shape_and_inference_matches_training() {
    let text = anatomy::topologies::resnet50_topology(32, 10);
    let nl = parse_topology(&text).unwrap();
    let convs = nl.nodes().iter().filter(|n| matches!(n, NodeSpec::Conv { .. })).count();
    assert_eq!(convs, 53, "the full ResNet-50 graph");
    let distinct = distinct_conv_layers(nl.nodes(), 2);
    assert!(distinct < convs, "repeats exist: {distinct} distinct of {convs}");

    let cache = PlanCache::new();
    let pool = Arc::new(ThreadPool::new(4));
    let mut train =
        Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
    // one JIT + dryrun per distinct layer shape, not per node
    assert_eq!(
        cache.misses(),
        distinct,
        "cache must build exactly one plan per distinct (shape, input_pad)"
    );
    assert_eq!(cache.hits(), convs - distinct, "every repeat must hit");

    // the inference build reuses every plan: zero further misses
    let mut infer =
        Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
    assert_eq!(cache.misses(), distinct, "inference build must JIT nothing");
    assert_eq!(cache.hits(), 2 * convs - distinct);

    // zero gradient/momentum allocation in inference
    assert_eq!(infer.gradient_blob_count(), 0);
    assert_eq!(infer.training_state_bytes(), 0);
    assert!(train.training_state_bytes() > 0);
    assert!(
        infer.activation_slot_count() < train.activation_slot_count(),
        "liveness plan must share buffers ({} vs {})",
        infer.activation_slot_count(),
        train.activation_slot_count()
    );

    // forward parity: loss and top-1 agree exactly
    let mut rng = SplitMix64::new(99);
    let mut input = vec![0.0f32; train.input_mut().as_slice().len()];
    rng.fill_f32(&mut input);
    let labels = vec![3usize, 7];
    train.set_labels(&labels);
    infer.set_labels(&labels);
    train.input_mut().as_mut_slice().copy_from_slice(&input);
    infer.input_mut().as_mut_slice().copy_from_slice(&input);
    let st = train.forward();
    let si = infer.forward();
    assert_eq!(st.loss, si.loss, "ResNet-50 inference forward must match training exactly");
    assert_eq!(st.top1, si.top1);
    assert_eq!(train.probabilities(), infer.probabilities());
}

#[test]
fn inception_inference_matches_training() {
    let text = anatomy::topologies::inception_v3_topology_sized(63, 10);
    let nl = parse_topology(&text).unwrap();
    let cache = PlanCache::new();
    let pool = Arc::new(ThreadPool::new(4));
    let mut train =
        Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
    let misses_after_train = cache.misses();
    let mut infer =
        Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
    assert_eq!(cache.misses(), misses_after_train, "inference build must JIT nothing new");
    assert_eq!(infer.gradient_blob_count(), 0);
    assert_eq!(infer.training_state_bytes(), 0);

    let mut rng = SplitMix64::new(123);
    let mut input = vec![0.0f32; train.input_mut().as_slice().len()];
    rng.fill_f32(&mut input);
    let labels = vec![1usize, 4];
    train.set_labels(&labels);
    infer.set_labels(&labels);
    for step in 0..2 {
        train.input_mut().as_mut_slice().copy_from_slice(&input);
        infer.input_mut().as_mut_slice().copy_from_slice(&input);
        let st = train.forward();
        let si = infer.forward();
        assert_eq!(st.loss, si.loss, "step {step}: Inception inference must match training");
        assert_eq!(st.top1, si.top1, "step {step}");
        assert_eq!(train.probabilities(), infer.probabilities(), "step {step}");
    }
}

#[test]
fn inference_session_serves_batches() {
    let topo = anatomy::topologies::resnet50_topology(32, 10);
    let mut session = InferenceSession::new(&topo, 2, 2).expect("valid topology");
    assert_eq!(session.classes(), 10);
    assert_eq!(session.network().training_state_bytes(), 0);

    let mut rng = SplitMix64::new(5);
    let mut batch = vec![0.0f32; 2 * 3 * 32 * 32];
    let mut first = None;
    for i in 0..3 {
        rng.fill_f32(&mut batch);
        if i == 0 {
            first = Some(batch.clone());
        }
        let out = session.run(&batch).unwrap();
        assert_eq!(out.top1.len(), 2);
        assert_eq!(out.probs.len(), 2 * 10);
        for n in 0..2 {
            let row = &out.probs[n * 10..(n + 1) * 10];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "probabilities must sum to 1, got {sum}");
            assert!(row.iter().all(|p| *p >= 0.0));
        }
    }
    // replaying the first batch reproduces its outputs exactly
    // (recycled buffers hold no hidden state)
    let first = first.unwrap();
    let a = session.run(&first).unwrap();
    let b = session.run(&first).unwrap();
    assert_eq!(a.probs, b.probs);
    assert_eq!(a.top1, b.top1);

    // a second session sharing pool + cache builds without new JIT
    let misses = session.cache_stats().misses;
    let pool = Arc::clone(session.pool());
    let cache = session.cache().clone();
    let mut twin = InferenceSession::with_shared(&topo, 2, pool, cache).unwrap();
    assert_eq!(twin.cache_stats().misses, misses, "shared cache must serve the twin session");
    let out = twin.run(&first).unwrap();
    assert_eq!(out.probs, a.probs, "twin session must reproduce the same outputs");
}
