//! End-to-end acceptance tests of the plan-time autotuner through the
//! serving facade:
//!
//! * a `Model`- or `Measured`-tuned [`anatomy::InferenceSession`]
//!   predicts the same classes as the heuristic session on the same
//!   inputs (the tuner changes the blocking, never the math);
//! * one shared cache tunes each distinct `(shape, machine, level)`
//!   exactly once, no matter how many replicas build through it;
//! * saving the tuning cache and restarting (a fresh `PlanCache`)
//!   replays every winner with zero tuning searches and zero
//!   micro-bench runs.

use anatomy::conv::PlanCache;
use anatomy::parallel::ThreadPool;
use anatomy::{ConvOpts, GraphBuilder, InferenceSession, ModelSpec, TuneLevel};
use std::sync::Arc;

fn model() -> ModelSpec {
    GraphBuilder::new()
        .seed(7)
        .input("data", 3, 12, 12)
        .conv("c1", ConvOpts::k(16).rs(3).pad(1))
        .bn_relu("b1")
        .conv("c2", ConvOpts::k(32).rs(3).pad(1))
        .bn_relu("b2")
        .conv("c3", ConvOpts::k(32).rs(1).relu())
        .gap("gap")
        .fc("logits", 5)
        .softmax("loss")
        .build()
        .unwrap()
}

fn batch() -> Vec<f32> {
    let mut v = vec![0.0f32; 2 * 3 * 12 * 12];
    let mut rng = anatomy::tensor::rng::SplitMix64::new(99);
    rng.fill_f32(&mut v);
    v
}

#[test]
fn tuned_sessions_predict_like_the_heuristic() {
    let spec = model();
    let input = batch();
    let mut heuristic = InferenceSession::new(&spec, 2, 2).unwrap();
    let want = heuristic.run(&input).unwrap();

    for level in [TuneLevel::Model, TuneLevel::Measured] {
        let pool = Arc::new(ThreadPool::new(2));
        let mut tuned =
            InferenceSession::with_shared_tuned(&spec, 2, pool, PlanCache::new(), level).unwrap();
        let got = tuned.run(&input).unwrap();
        assert_eq!(got.top1, want.top1, "{level:?} changed predictions");
        for (a, b) in got.probs.iter().zip(&want.probs) {
            assert!((a - b).abs() < 1e-4, "{level:?}: prob {a} vs {b}");
        }
        let stats = tuned.cache_stats();
        assert!(stats.tuned_plans > 0, "{level:?} built no tuned plans");
        assert_eq!(stats.heuristic_plans, 0);
        assert!(stats.tune_runs > 0);
    }
}

#[test]
fn replicas_share_one_tuning_search() {
    let spec = model();
    let cache = PlanCache::new();
    // two "replicas": same model, same thread count, shared cache
    for _ in 0..2 {
        let pool = Arc::new(ThreadPool::new(2));
        let _ =
            InferenceSession::with_shared_tuned(&spec, 2, pool, cache.clone(), TuneLevel::Model)
                .unwrap();
    }
    let stats = cache.stats();
    // distinct conv shapes in `model()`: c1, c2, c3 → 3 searches, once
    assert_eq!(stats.tune_runs, 3, "each distinct shape tunes exactly once per process");
    assert_eq!(stats.entries, stats.misses, "replica 2 hit every plan");
    assert!(stats.hits > 0);
}

#[test]
fn restart_with_tuning_file_never_micro_benches() {
    let spec = model();
    let cache = PlanCache::new();
    let pool = Arc::new(ThreadPool::new(2));
    let _ = InferenceSession::with_shared_tuned(&spec, 2, pool, cache.clone(), TuneLevel::Model)
        .unwrap();
    let first = cache.stats();
    assert_eq!(first.tune_runs, 3);

    let dir = std::env::temp_dir().join("anatomy-autotune-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("tunes-{}.bin", std::process::id()));
    assert_eq!(cache.save_tuning(&path).unwrap(), 3);

    // "restart": a brand-new cache loads the file, then builds the
    // same model — every winner replays, nothing searches or measures
    let restarted = PlanCache::new();
    assert_eq!(restarted.load_tuning(&path).unwrap(), 3);
    let pool = Arc::new(ThreadPool::new(2));
    let mut session =
        InferenceSession::with_shared_tuned(&spec, 2, pool, restarted.clone(), TuneLevel::Model)
            .unwrap();
    let stats = restarted.stats();
    assert_eq!(stats.tune_runs, 0, "restart re-tuned");
    assert_eq!(stats.tune_micro_runs, 0, "restart micro-benched");
    assert_eq!(stats.tuned_plans, 3);
    // and the served network still works
    let out = session.run(&batch()).unwrap();
    assert_eq!(out.top1.len(), 2);
    std::fs::remove_file(&path).unwrap();
}
