//! Chaos end-to-end tests (`--features chaos`): seeded fault plans
//! injected at the replica, dispatcher, router and codec sites must
//! never hang a caller — every request resolves with an answer or a
//! typed error, supervised replicas restart, and recovered serving
//! stays bit-identical to an unfaulted run.
//!
//! The plan seed comes from `ANATOMY_CHAOS_SEED` (CI sweeps several
//! fixed seeds); `every`/`first` triggers are seed-independent, so
//! the structural assertions hold for any seed.
#![cfg(feature = "chaos")]

use anatomy::daemon::{Client, ClientConfig, Daemon, DaemonConfig, ModelConfig, RetryPolicy};
use anatomy::fault::{self, FaultAction, FaultPlan};
use anatomy::serve::{BatchingFrontend, ServeConfig};
use anatomy::{Error, InferenceSession};
use std::sync::{Mutex, MutexGuard, Once};
use std::time::{Duration, Instant};

fn tiny_topology() -> &'static str {
    "input name=data c=3 h=8 w=8\n\
     conv name=c1 bottom=data k=16 r=3 s=3 pad=1 bias=1 relu=1\n\
     gap name=g bottom=c1\n\
     fc name=logits bottom=g k=5\n\
     softmaxloss name=loss bottom=logits\n"
}

const SAMPLE: usize = 3 * 8 * 8;

fn random_images(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = anatomy::tensor::rng::SplitMix64::new(seed);
    let mut v = vec![0.0f32; n * SAMPLE];
    rng.fill_f32(&mut v);
    v
}

/// What the frontend serves for a lone sample: the replica pads the
/// partial batch with zeros and the sample lands in row 0 — reproduce
/// exactly that against the direct session and return row 0.
fn expected_single(
    direct: &mut InferenceSession,
    sample: &[f32],
    minibatch: usize,
) -> (Vec<f32>, usize) {
    let mut flat = vec![0.0f32; minibatch * SAMPLE];
    flat[..SAMPLE].copy_from_slice(sample);
    let out = direct.run(&flat).unwrap();
    let classes = out.probs.len() / minibatch;
    (out.probs[..classes].to_vec(), out.top1[0])
}

fn chaos_seed() -> u64 {
    std::env::var("ANATOMY_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(11)
}

/// The fault plan is process-global state: serialize every chaos test
/// behind one lock (recovering from poison — a failed test must not
/// wedge the rest of the suite), and keep injected panics out of the
/// test output.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_guard() -> MutexGuard<'static, ()> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
    fault::clear();
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The textual plan grammar (the `ANATOMY_FAULT_PLAN` surface)
/// parses the documented forms and rejects garbage at install time.
#[test]
fn fault_plan_grammar_parses_and_rejects() {
    let _guard = chaos_guard();
    let plan = FaultPlan::parse(
        "seed=7;replica.batch=panic@every3;codec.read=io@p0.5;router.frame=delay:20ms@first2",
    )
    .unwrap();
    fault::install(&plan);
    assert!(fault::active());
    fault::clear();
    assert!(!fault::active());

    assert!(FaultPlan::parse("replica.batch=explode").is_err(), "unknown action");
    assert!(FaultPlan::parse("replica.batch=panic@sometimes").is_err(), "unknown trigger");
    assert!(FaultPlan::parse("codec.read=io@p1.5").is_err(), "probability out of range");
    assert!(FaultPlan::parse("seed=notanumber").is_err(), "bad seed");
    assert!(FaultPlan::parse("garbage").is_err(), "missing '='");
}

/// Replica panics on every 3rd batch: every request still resolves,
/// failures are typed, survivors are bit-identical to an unfaulted
/// direct session, the restart counters advance, and after
/// `fault::clear()` serving is fully healthy again.
#[test]
fn supervised_frontend_survives_replica_panics_bit_exact() {
    let _guard = chaos_guard();
    fault::install(&FaultPlan::seeded(chaos_seed()).entry(
        "replica.batch",
        FaultAction::Panic,
        "every3",
    ));

    let minibatch = 2;
    let mut direct = InferenceSession::new(tiny_topology(), minibatch, 1).unwrap();
    let cfg = ServeConfig::new(1, 1, minibatch)
        .with_max_wait(Duration::from_millis(1))
        .with_restart_policy(10, Duration::from_millis(1), Duration::from_millis(10));
    let frontend = BatchingFrontend::new(tiny_topology(), cfg).unwrap();

    // multi-threaded client traffic: 4 submitters × 10 single-sample
    // requests against the one supervised replica, each waiting with
    // a bound — proving "resolves", not "eventually resolves"
    let (threads, per) = (4usize, 10usize);
    let n = threads * per;
    let images = random_images(n, 0xC0FFEE ^ chaos_seed());
    let mut resolved: Vec<(usize, Option<anatomy::InferenceOutput>)> = Vec::new();
    std::thread::scope(|scope| {
        let (images, frontend) = (&images, &frontend);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for k in 0..per {
                        let i = t * per + k;
                        let sample = &images[i * SAMPLE..(i + 1) * SAMPLE];
                        let res = frontend
                            .submit(sample)
                            .and_then(|p| p.wait_timeout(Duration::from_secs(60)));
                        match res {
                            Ok(o) => out.push((i, Some(o))),
                            Err(Error::Serve(msg)) => {
                                assert!(msg.contains("panicked"), "unexpected failure: {msg}");
                                out.push((i, None));
                            }
                            Err(other) => panic!("sample {i}: unexpected error {other:?}"),
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            resolved.extend(h.join().unwrap());
        }
    });
    assert_eq!(resolved.len(), n, "every request must resolve");
    let (mut oks, mut fails) = (0usize, 0usize);
    for (i, out) in &resolved {
        match out {
            Some(out) => {
                let sample = &images[i * SAMPLE..(i + 1) * SAMPLE];
                let (probs, top1) = expected_single(&mut direct, sample, minibatch);
                assert_eq!(out.probs, probs, "sample {i}: survivor must stay bit-exact");
                assert_eq!(out.top1, vec![top1]);
                oks += 1;
            }
            None => fails += 1,
        }
    }
    assert!(oks > 0, "some requests must survive the chaos");
    assert!(fails > 0, "an every-3rd-batch panic plan must fail some requests");
    assert!(fault::fired("replica.batch") > 0);

    let stats = frontend.stats();
    assert!(stats.replica_panics > 0, "panic counter must advance");
    assert!(stats.replica_restarts > 0, "the supervisor must have restarted the replica");
    assert_eq!(stats.requests_failed, fails);
    assert!(!stats.failed, "recoverable panics must not enter the terminal state");

    // disarm: the recovered frontend must serve cleanly and bit-exact
    fault::clear();
    for i in 0..4 {
        let sample = &images[i * SAMPLE..(i + 1) * SAMPLE];
        let out = frontend.infer(sample).unwrap();
        let (probs, _) = expected_single(&mut direct, sample, minibatch);
        assert_eq!(out.probs, probs, "post-recovery sample {i} must stay bit-exact");
    }
    frontend.shutdown();
}

/// When the rebuild itself keeps panicking, the restart budget runs
/// out and the frontend enters the terminal Failed state: submit
/// returns a typed error instead of hanging.
#[test]
fn restart_exhaustion_enters_terminal_failed_state() {
    let _guard = chaos_guard();
    fault::install(
        &FaultPlan::seeded(chaos_seed())
            .entry("replica.batch", FaultAction::Panic, "first1")
            .entry("replica.rebuild", FaultAction::Panic, "always"),
    );

    let cfg = ServeConfig::new(1, 1, 2)
        .with_max_wait(Duration::from_millis(1))
        .with_restart_policy(2, Duration::from_millis(1), Duration::from_millis(2));
    let frontend = BatchingFrontend::new(tiny_topology(), cfg).unwrap();
    let image = vec![0.5f32; SAMPLE];

    // the first batch panics; its request must fail typed, not hang
    let err = frontend
        .submit(&image)
        .unwrap()
        .wait_timeout(Duration::from_secs(30))
        .expect_err("the poisoned batch must fail its request");
    assert!(matches!(err, Error::Serve(_)), "got {err:?}");

    // both rebuild attempts panic too — the supervisor must give up
    let deadline = Instant::now() + Duration::from_secs(10);
    while !frontend.failed() {
        assert!(Instant::now() < deadline, "terminal Failed state never reached");
        std::thread::sleep(Duration::from_millis(5));
    }
    let msg = match frontend.submit(&image) {
        Ok(_) => panic!("submit must be rejected when Failed"),
        Err(e) => e.to_string(),
    };
    assert!(msg.contains("Failed state"), "submit error must name the terminal state: {msg}");

    fault::clear();
    let stats = frontend.shutdown();
    assert!(stats.failed);
    assert!(stats.replica_panics > 0);
    assert_eq!(stats.replica_restarts, 0, "no rebuild ever succeeded");
}

/// Daemon end-to-end: a retrying client completes its whole workload
/// bit-exact while the hosted model's replica is being killed every
/// 4th batch, and the stats scrape reports the supervision counters.
#[test]
fn retry_client_completes_workload_under_replica_chaos() {
    let _guard = chaos_guard();
    fault::install(&FaultPlan::seeded(chaos_seed()).entry(
        "replica.batch",
        FaultAction::Panic,
        "every4",
    ));

    let minibatch = 2;
    let mut direct = InferenceSession::new(tiny_topology(), minibatch, 1).unwrap();
    let serve = ServeConfig::new(1, 1, minibatch)
        .with_max_wait(Duration::from_millis(1))
        .with_restart_policy(10, Duration::from_millis(1), Duration::from_millis(10));
    let daemon = Daemon::bind(
        DaemonConfig::loopback(),
        vec![ModelConfig::new("tiny", tiny_topology(), serve).unwrap()],
    )
    .unwrap();

    // server-side Internal failures (the killed batches) are only
    // retried with the opt-in, and infer is idempotent here
    let retry = RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
        ..RetryPolicy::default()
    }
    .with_server_failure_retry();
    let mut client = Client::connect_with(
        daemon.local_addr(),
        ClientConfig::new().with_timeouts(Duration::from_secs(30)).with_retry(retry),
    )
    .unwrap();

    let n = 20;
    let images = random_images(n, 0xD00D ^ chaos_seed());
    for i in 0..n {
        let sample = &images[i * SAMPLE..(i + 1) * SAMPLE];
        let out = client.infer("tiny", 1, sample).unwrap();
        let (probs, top1) = expected_single(&mut direct, sample, minibatch);
        assert_eq!(out.probs, probs, "request {i}: retried result must stay bit-exact");
        assert_eq!(out.top1, vec![top1]);
    }
    assert!(fault::fired("replica.batch") > 0, "the plan must actually have fired");

    fault::clear();
    let stats = daemon.shutdown();
    let panics = stat_value(&stats, "serve_model_replica_panics_total{model=\"tiny\"}");
    let restarts = stat_value(&stats, "serve_model_replica_restarts_total{model=\"tiny\"}");
    assert!(panics > 0, "stats must report the injected panics:\n{stats}");
    assert!(restarts > 0, "stats must report the restarts:\n{stats}");
}

/// Wire-level chaos: injected connection resets in the codec and
/// delays in the router must never hang anyone — requests resolve
/// with answers or typed errors, and the daemon serves cleanly once
/// the plan is disarmed.
#[test]
fn wire_faults_resolve_typed_and_daemon_survives() {
    let _guard = chaos_guard();
    fault::install(
        &FaultPlan::seeded(chaos_seed()).entry("codec.read", FaultAction::Io, "every9").entry(
            "router.frame",
            FaultAction::Delay(Duration::from_millis(20)),
            "every5",
        ),
    );

    let minibatch = 2;
    let mut direct = InferenceSession::new(tiny_topology(), minibatch, 1).unwrap();
    let serve = ServeConfig::new(1, 1, minibatch).with_max_wait(Duration::from_millis(1));
    let daemon = Daemon::bind(
        DaemonConfig::loopback(),
        vec![ModelConfig::new("tiny", tiny_topology(), serve).unwrap()],
    )
    .unwrap();

    // `codec.read` also fires inside this client's own frame reader
    // (the site is process-global), so even the handshake can be hit
    let config =
        ClientConfig::new().with_timeouts(Duration::from_secs(10)).with_retry(RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(10),
            ..RetryPolicy::default()
        });
    let mut client = None;
    for _ in 0..20 {
        match Client::connect_with(daemon.local_addr(), config.clone()) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    let mut client = client.expect("connect must eventually survive the injected resets");

    let n = 12;
    let images = random_images(n, 0xFEED ^ chaos_seed());
    let (mut oks, mut typed_errs) = (0usize, 0usize);
    for i in 0..n {
        let sample = &images[i * SAMPLE..(i + 1) * SAMPLE];
        let started = Instant::now();
        match client.infer("tiny", 1, sample) {
            Ok(out) => {
                let (probs, _) = expected_single(&mut direct, sample, minibatch);
                assert_eq!(out.probs, probs, "request {i} must stay bit-exact");
                oks += 1;
            }
            // a reset that lands after response bytes arrived is not
            // retried — it must surface as a typed error, fast
            Err(Error::Io(_) | Error::Serve(_) | Error::Timeout { .. }) => typed_errs += 1,
            Err(other) => panic!("request {i}: unexpected error class {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(30), "request {i} must not hang");
    }
    assert!(oks > 0, "the retrying client must complete most of the workload");
    assert!(fault::fired("codec.read") > 0);
    assert!(fault::fired("router.frame") > 0);
    let _ = typed_errs; // may be 0 when every reset lands pre-response

    // disarm: a fresh client round-trips cleanly and the daemon's
    // final scrape works
    fault::clear();
    let mut clean = Client::connect_with(daemon.local_addr(), config).unwrap();
    let out = clean.infer("tiny", 1, &images[..SAMPLE]).unwrap();
    assert_eq!(out.probs, expected_single(&mut direct, &images[..SAMPLE], minibatch).0);
    let stats = daemon.shutdown();
    assert!(stats.contains("serve_connections_total"));
}

/// Pull `name value` out of a stats-text snapshot.
fn stat_value(stats: &str, name: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(name).map(|rest| rest.trim().parse().unwrap()))
        .unwrap_or_else(|| panic!("stats line '{name}' missing in:\n{stats}"))
}
