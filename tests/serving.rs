//! Batching-frontend edge cases: oversized requests, deadline
//! flushes, result routing under concurrent submitters, and bit-exact
//! parity between frontend-served and direct `InferenceSession::run`
//! outputs.
//!
//! The topologies here are bn-free to keep the focus on the
//! dispatcher mechanics; `tests/frozen_stats.rs` asserts the same
//! single-vs-coalesced bit parity for bn-graphs (frozen-stats
//! inference made batch norm batch-composition-independent).

use anatomy::serve::{BatchingFrontend, ServeConfig};
use anatomy::InferenceSession;
use std::time::Duration;

fn tiny_topology() -> &'static str {
    "input name=data c=3 h=8 w=8\n\
     conv name=c1 bottom=data k=16 r=3 s=3 pad=1 bias=1 relu=1\n\
     pool name=p1 bottom=c1 kind=max size=2 stride=2\n\
     conv name=c2 bottom=p1 k=16 bias=1 relu=1\n\
     gap name=g bottom=c2\n\
     fc name=logits bottom=g k=5\n\
     softmaxloss name=loss bottom=logits\n"
}

const SAMPLE: usize = 3 * 8 * 8;

fn random_images(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = anatomy::tensor::rng::SplitMix64::new(seed);
    let mut v = vec![0.0f32; n * SAMPLE];
    rng.fill_f32(&mut v);
    v
}

#[test]
fn frontend_matches_direct_session_bitexact() {
    let minibatch = 4;
    let threads = 2;
    let mut direct = InferenceSession::new(tiny_topology(), minibatch, threads).unwrap();
    let frontend = BatchingFrontend::new(
        tiny_topology(),
        ServeConfig::new(1, threads, minibatch).with_max_wait(Duration::from_millis(1)),
    )
    .unwrap();

    let images = random_images(minibatch, 77);
    let want = direct.run(&images).unwrap();

    // one request carrying the whole minibatch: lands as one batch
    let got = frontend.infer(&images).unwrap();
    assert_eq!(got.probs, want.probs, "full-batch request must be bit-identical to direct run");
    assert_eq!(got.top1, want.top1);

    // the same samples submitted one by one: each is served from a
    // padded partial batch at position 0, and must STILL match the
    // direct run's row n bit-for-bit (per-sample independence)
    for n in 0..minibatch {
        let one = frontend.infer(&images[n * SAMPLE..(n + 1) * SAMPLE]).unwrap();
        let classes = frontend.classes();
        assert_eq!(
            one.probs,
            want.probs[n * classes..(n + 1) * classes],
            "sample {n} served alone must match its batched result"
        );
        assert_eq!(one.top1[0], want.top1[n]);
    }
    let stats = frontend.shutdown();
    assert_eq!(stats.requests, 1 + minibatch);
    assert_eq!(stats.images, 2 * minibatch);
}

#[test]
fn oversized_request_spans_batches() {
    let minibatch = 2;
    let count = 5; // 2 full batches + 1 padded tail batch
    let mut direct = InferenceSession::new(tiny_topology(), minibatch, 1).unwrap();
    let frontend = BatchingFrontend::new(
        tiny_topology(),
        ServeConfig::new(1, 1, minibatch).with_max_wait(Duration::from_millis(1)),
    )
    .unwrap();
    let images = random_images(count, 123);
    let out = frontend.infer(&images).unwrap();
    assert_eq!(out.top1.len(), count);
    assert_eq!(out.probs.len(), count * frontend.classes());
    // every sample matches a direct single-sample run
    for n in 0..count {
        let want = direct.run_samples(&images[n * SAMPLE..(n + 1) * SAMPLE], 1).unwrap();
        let classes = frontend.classes();
        assert_eq!(out.probs[n * classes..(n + 1) * classes], want.probs, "sample {n}");
        assert_eq!(out.top1[n], want.top1[0]);
    }
    let stats = frontend.shutdown();
    assert_eq!(stats.images, count);
    assert!(
        stats.batches >= 3,
        "5 samples at minibatch 2 need >= 3 batches, got {}",
        stats.batches
    );
    assert!(stats.mean_occupancy > 0.5 && stats.mean_occupancy <= 1.0);
}

#[test]
fn lone_request_hits_the_deadline() {
    // minibatch 4 but only ONE sample ever arrives: without the
    // max_wait flush this would stall forever
    let frontend = BatchingFrontend::new(
        tiny_topology(),
        ServeConfig::new(1, 1, 4).with_max_wait(Duration::from_millis(5)),
    )
    .unwrap();
    let images = random_images(1, 9);
    let out = frontend.infer(&images).unwrap();
    assert_eq!(out.top1.len(), 1);
    let stats = frontend.shutdown();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.deadline_flushes, 1, "the lone request must be a deadline flush");
    assert!(stats.mean_occupancy <= 0.25 + 1e-9, "1 of 4 slots: {}", stats.mean_occupancy);
    assert!(stats.p50_latency >= Duration::from_millis(4), "latency includes the wait window");
}

#[test]
fn concurrent_submitters_get_their_own_results() {
    let minibatch = 4;
    let clients = 6;
    let per_client = 4;
    // expected outputs per client, from a direct session
    let mut direct = InferenceSession::new(tiny_topology(), minibatch, 1).unwrap();
    let images: Vec<Vec<f32>> = (0..clients).map(|k| random_images(1, 1000 + k as u64)).collect();
    let expected: Vec<_> = images.iter().map(|im| direct.run_samples(im, 1).unwrap()).collect();

    let frontend = std::sync::Arc::new(
        BatchingFrontend::new(
            tiny_topology(),
            // 2 replicas so batches genuinely run concurrently
            ServeConfig::new(2, 1, minibatch).with_max_wait(Duration::from_millis(1)),
        )
        .unwrap(),
    );
    std::thread::scope(|scope| {
        for k in 0..clients {
            let frontend = std::sync::Arc::clone(&frontend);
            let image = images[k].clone();
            let want = expected[k].clone();
            scope.spawn(move || {
                for round in 0..per_client {
                    let got = frontend.infer(&image).unwrap();
                    assert_eq!(got.probs, want.probs, "client {k} round {round} got foreign data");
                    assert_eq!(got.top1, want.top1);
                }
            });
        }
    });
    let frontend = std::sync::Arc::into_inner(frontend).unwrap();
    let stats = frontend.shutdown();
    assert_eq!(stats.requests, clients * per_client);
    assert_eq!(stats.images, clients * per_client);
    assert!(stats.batches >= (clients * per_client).div_ceil(minibatch));
}

#[test]
fn shutdown_drains_the_queue_without_counting_deadline_flushes() {
    // max_wait far beyond the test runtime: the only way the lone
    // sample gets served is the shutdown drain, which must complete
    // the request but NOT be attributed to the deadline
    let frontend = BatchingFrontend::new(
        tiny_topology(),
        ServeConfig::new(1, 1, 4).with_max_wait(Duration::from_secs(3600)),
    )
    .unwrap();
    let images = random_images(1, 5);
    let handle = frontend.submit(&images).unwrap();
    let stats = frontend.shutdown();
    let out = handle.wait().unwrap();
    assert_eq!(out.top1.len(), 1);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.deadline_flushes, 0, "a shutdown drain is not a deadline flush");
}

#[test]
fn malformed_topologies_are_err_not_panic() {
    let no_input = "conv name=c1 bottom=data k=16\nsoftmaxloss name=loss bottom=c1\n";
    assert!(InferenceSession::new(no_input, 2, 1).is_err());
    let no_loss = "input name=data c=3 h=8 w=8\nconv name=c1 bottom=data k=16\n";
    assert!(InferenceSession::new(no_loss, 2, 1).is_err());
    assert!(BatchingFrontend::new(no_input, ServeConfig::new(1, 1, 2)).is_err());
    assert!(BatchingFrontend::new(tiny_topology(), ServeConfig::new(0, 1, 2)).is_err());
}

#[test]
fn n_replicas_cost_one_jit_pass() {
    let frontend = BatchingFrontend::new(tiny_topology(), ServeConfig::new(3, 1, 2)).unwrap();
    let stats = frontend.stats();
    // 2 distinct conv shapes in the topology: replica 0 builds them,
    // replicas 1 and 2 only hit
    assert_eq!(stats.caches.plans.entries, 2, "{:?}", stats.caches.plans);
    assert_eq!(stats.caches.plans.misses, 2, "{:?}", stats.caches.plans);
    assert!(stats.caches.plans.hits >= 4, "replicas must reuse plans: {:?}", stats.caches.plans);
    drop(frontend);
}
