//! Cross-crate integration: full graph training with GxM on real
//! topologies, plus the multi-node semantic equivalence check.

use anatomy::gxm::data::SyntheticData;
use anatomy::gxm::multinode::allreduce_gradients;
use anatomy::gxm::{parse_topology, Network, NodeSpec};

#[test]
fn resnet50_graph_builds_and_trains() {
    // the real ResNet-50 graph (all 53 convs) at reduced resolution
    let text = anatomy::topologies::resnet50_topology(32, 10);
    let nl = parse_topology(&text).unwrap();
    let mut net = Network::build(&nl, 2, 4).unwrap();
    // ~23.5M conv/fc parameters (the ResNet-50 count)
    assert!(net.param_count() > 20_000_000, "{}", net.param_count());
    let mut data = SyntheticData::new(10, 3, 32, 32, 5);
    let mut losses = Vec::new();
    for _ in 0..3 {
        let labels = data.next_batch(net.input_mut());
        let s = net.train_step(&labels, 0.002, 0.9);
        assert!(s.loss.is_finite(), "loss diverged");
        losses.push(s.loss);
    }
}

#[test]
fn inception_block_trains_through_concat() {
    let text = anatomy::topologies::inception_v3_topology(10);
    let nl = parse_topology(&text).unwrap();
    // graph contains split + concat machinery
    let mut net = Network::build(&nl, 2, 4).unwrap();
    assert!(net.etg().eng.nodes.iter().any(|n| matches!(n, NodeSpec::Split { .. })));
    let mut data = SyntheticData::new(10, 3, 147, 147, 6);
    let labels = data.next_batch(net.input_mut());
    let s = net.train_step(&labels, 0.01, 0.9);
    assert!(s.loss.is_finite());
}

#[test]
fn memorization_on_fixed_batch() {
    // a network must be able to drive training loss toward zero on a
    // single repeated batch — end-to-end gradient correctness
    let text = "input name=data c=16 h=8 w=8\n\
                conv name=c1 bottom=data k=32 r=3 s=3 pad=1 bias=1 relu=1\n\
                conv name=c2 bottom=c1 k=32 bias=1 relu=1\n\
                gap name=g bottom=c2\n\
                fc name=logits bottom=g k=16\n\
                softmaxloss name=loss bottom=logits\n";
    let nl = parse_topology(text).unwrap();
    let mut net = Network::build(&nl, 8, 4).unwrap();
    let mut data = SyntheticData::new(4, 16, 8, 8, 9);
    let labels = data.next_batch(net.input_mut());
    let input: Vec<f32> = net.input_mut().as_slice().to_vec();
    let mut final_stats = None;
    for _ in 0..150 {
        net.input_mut().as_mut_slice().copy_from_slice(&input);
        final_stats = Some(net.train_step(&labels, 0.05, 0.9));
    }
    let s = final_stats.unwrap();
    assert!(s.top1 >= 0.9, "did not memorize: top1 {}", s.top1);
    assert!(s.loss < 0.6, "loss too high: {}", s.loss);
}

#[test]
fn data_parallel_allreduce_is_average() {
    // semantic core of Fig. 9's data parallelism: averaged shard
    // gradients equal the large-batch gradient (here on raw vectors;
    // the network-level equivalence follows from gradient linearity)
    let g1: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let g2: Vec<f32> = (0..64).map(|i| (63 - i) as f32).collect();
    let mut shards = vec![g1.clone(), g2.clone()];
    allreduce_gradients(&mut shards);
    for i in 0..64 {
        let want = (g1[i] + g2[i]) / 2.0;
        assert_eq!(shards[0][i], want);
        assert_eq!(shards[1][i], want);
    }
}
