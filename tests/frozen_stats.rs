//! End-to-end frozen-stats serving acceptance: train a bn-graph, save
//! it through `StateDict`, serve it through the `BatchingFrontend`,
//! and assert the property this PR exists for — a bn-graph
//! prediction no longer depends on batch composition. The same image
//! served alone (zero-padded partial batch) and coalesced into a full
//! batch of other live images must produce **bit-identical**
//! probabilities.

use anatomy::gxm::Network;
use anatomy::serve::{BatchingFrontend, ServeConfig};
use anatomy::tensor::rng::SplitMix64;
use anatomy::{InferenceSession, ModelSpec};
use std::time::Duration;

/// A trainable residual bn-graph: conv→bn chains, a shortcut join,
/// and a pooling stage (so both folded and frozen-standalone BN
/// execution paths serve traffic).
fn bn_model() -> ModelSpec {
    anatomy::gxm::parse_topology(
        "input name=data c=8 h=8 w=8\n\
         conv name=c0 bottom=data k=16\n\
         bn name=b0 bottom=c0 relu=1\n\
         conv name=c1 bottom=b0 k=16\n\
         bn name=b1 bottom=c1 relu=1\n\
         conv name=c2 bottom=b1 k=16\n\
         bn name=b2 bottom=c2 eltwise=b0 relu=1\n\
         pool name=p bottom=b2 kind=max size=2 stride=2\n\
         conv name=c3 bottom=p k=16\n\
         bn name=b3 bottom=c3 relu=1\n\
         gap name=g bottom=b3\n\
         fc name=logits bottom=g k=5\n\
         softmaxloss name=loss bottom=logits\n",
    )
    .unwrap()
    .with_seed(41)
}

const SAMPLE: usize = 8 * 8 * 8;

#[test]
fn trained_bn_graph_served_alone_or_coalesced_is_bit_identical() {
    let model = bn_model();
    // really train it (stable on a shallow graph): weights move, loss
    // falls, running statistics accumulate
    let mut net = Network::build(&model, 4, 2).unwrap();
    let mut rng = SplitMix64::new(7);
    let mut input = vec![0.0f32; net.input_mut().as_slice().len()];
    rng.fill_f32(&mut input);
    let labels = vec![0usize, 1, 2, 3];
    let mut first = f32::NAN;
    let mut last = f32::NAN;
    for step in 0..25 {
        net.input_mut().as_mut_slice().copy_from_slice(&input);
        let s = net.train_step(&labels, 0.05, 0.9);
        if step == 0 {
            first = s.loss;
        }
        last = s.loss;
    }
    assert!(last < first, "training must make progress: {first} -> {last}");
    let sd = net.state_dict();

    // serve the trained weights through the batching frontend
    let minibatch = 4;
    let cfg = ServeConfig::new(1, 2, minibatch)
        .with_max_wait(Duration::from_millis(1))
        .with_pinning(false);
    let frontend = BatchingFrontend::with_weights(&model, cfg, &sd).unwrap();

    let mut images = vec![0.0f32; minibatch * SAMPLE];
    rng.fill_f32(&mut images);

    // one request carrying the whole batch: every sample coalesced
    let full = frontend.infer(&images).unwrap();
    // each sample submitted alone: served from a zero-padded partial
    // batch — with frozen statistics the bits must not change
    let classes = frontend.classes();
    for n in 0..minibatch {
        let lone = frontend.infer(&images[n * SAMPLE..(n + 1) * SAMPLE]).unwrap();
        let lone_bits: Vec<u32> = lone.probs.iter().map(|v| v.to_bits()).collect();
        let full_bits: Vec<u32> =
            full.probs[n * classes..(n + 1) * classes].iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            lone_bits, full_bits,
            "sample {n}: bn-graph prediction must be batch-composition-independent"
        );
        assert_eq!(lone.top1[0], full.top1[n]);
    }
    frontend.shutdown();
}

#[test]
fn served_bn_graph_folds_and_tracks_unfused_reference() {
    let model = bn_model();
    let mut net = Network::build(&model, 4, 2).unwrap();
    let mut rng = SplitMix64::new(8);
    let mut input = vec![0.0f32; net.input_mut().as_slice().len()];
    rng.fill_f32(&mut input);
    for _ in 0..10 {
        net.input_mut().as_mut_slice().copy_from_slice(&input);
        net.train_step(&[0, 1, 2, 3], 0.05, 0.9);
    }
    let sd = net.state_dict();

    let mut fused = InferenceSession::new(&model, 4, 2).unwrap();
    fused.load_state_dict(&sd).unwrap();
    // b0/b1/b2/b3 sit on pure convs; every geometry here is pad-0, so
    // all four fold (the join as BiasEltwiseRelu)
    assert_eq!(fused.network().bn_node_count(), 4);
    assert_eq!(fused.network().folded_bn_count(), 4);

    let mut unfused = InferenceSession::new_unfused(&model, 4, 2).unwrap();
    unfused.load_state_dict(&sd).unwrap();
    assert_eq!(unfused.network().folded_bn_count(), 0);

    let mut images = vec![0.0f32; 4 * SAMPLE];
    rng.fill_f32(&mut images);
    let a = fused.run(&images).unwrap();
    let b = unfused.run(&images).unwrap();
    assert_eq!(a.top1, b.top1);
    let n = anatomy::tensor::Norms::compare(&b.probs, &a.probs);
    assert!(n.ok(1e-4), "fused serving vs unfused frozen reference: {n}");
}
