//! Workspace smoke test: the `anatomy::` facade re-exports resolve and
//! a layer built through them produces the reference result on a tiny
//! shape. Guards the root crate's wiring (the examples and downstream
//! users depend on these paths, not on the member crates directly).

use anatomy::conv::fuse::FuseCtx;
use anatomy::conv::reference::conv_fwd_ref;
use anatomy::conv::{Backend, ConvLayer, LayerOptions};
use anatomy::parallel::ThreadPool;
use anatomy::tensor::{BlockedActs, BlockedFilter, ConvShape, Kcrs, Nchw, Norms, VLEN};

#[test]
fn facade_reexports_resolve() {
    // one symbol per re-exported crate, so a dropped `pub use` fails here
    let shape = ConvShape::new(1, 16, 16, 6, 6, 3, 3, 1, 1);
    assert_eq!(shape.cb(), 16usize.div_ceil(VLEN));
    assert!(anatomy::machine::MachineModel::skx().peak_gflops() > 0.0);
    assert!(anatomy::parallel::hardware_threads() >= 1);
    assert!(!anatomy::topologies::resnet50_table1(1).is_empty());
    let _ = anatomy::microkernel::has_avx512();
    let _ = anatomy::smallgemm::SmallGemm::new(2, 2, 2, 2, 2, 2, true);
    let _ = anatomy::jit::jit_available();
    let _ = anatomy::baselines::all_baselines(shape, 1);
}

#[test]
fn facade_layer_forward_matches_reference() {
    let shape = ConvShape::new(1, 16, 16, 6, 6, 3, 3, 1, 1);
    let pool = ThreadPool::new(2);
    let layer = ConvLayer::new(shape, LayerOptions::new(2).with_backend(Backend::Auto));

    let x = Nchw::random(shape.n, shape.c, shape.h, shape.w, 7);
    let w = Kcrs::random(shape.k, shape.c, shape.r, shape.s, 11);
    let xb = BlockedActs::from_nchw(&x, shape.pad);
    let wb = BlockedFilter::from_kcrs(&w);

    let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
    conv_fwd_ref(&shape, &x, &w, &mut y_ref);

    let mut yb = layer.new_output();
    layer.forward(&pool, &xb, &wb, &mut yb, &FuseCtx::default());

    let n = Norms::compare(y_ref.as_slice(), yb.to_nchw().as_slice());
    assert!(n.ok(1e-4), "facade forward diverged from reference: {n}");
}
