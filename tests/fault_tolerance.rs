//! Fault-tolerance surface that runs without the `chaos` feature:
//! deadline-bounded waits (typed `Error::Timeout`, slot cancellation,
//! late-result drop), the new failure counters, client read
//! timeouts against a mute server, and `RetryPolicy` — deterministic
//! backoff schedules and transparent reconnect after a pre-response
//! connection loss. The panic-injection e2e lives in `tests/chaos.rs`
//! (`--features chaos`).

use anatomy::daemon::codec::{write_frame, FrameReader};
use anatomy::daemon::protocol::{
    encode_hello_ok, encode_stats_ok, FrameType, DEFAULT_MAX_FRAME_LEN, VERSION,
};
use anatomy::daemon::{Client, ClientConfig, RetryPolicy};
use anatomy::serve::{BatchingFrontend, ServeConfig};
use anatomy::Error;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn tiny_topology() -> &'static str {
    "input name=data c=3 h=8 w=8\n\
     conv name=c1 bottom=data k=16 r=3 s=3 pad=1 bias=1 relu=1\n\
     gap name=g bottom=c1\n\
     fc name=logits bottom=g k=5\n\
     softmaxloss name=loss bottom=logits\n"
}

const SAMPLE: usize = 3 * 8 * 8;

#[test]
fn wait_timeout_cancels_and_late_results_are_dropped() {
    // minibatch 4 with a generous flush deadline: a lone sample sits
    // in the queue long enough for the waiter to give up first
    let cfg = ServeConfig::new(1, 1, 4).with_max_wait(Duration::from_millis(200));
    let frontend = BatchingFrontend::new(tiny_topology(), cfg).unwrap();
    let image = vec![0.25f32; SAMPLE];

    let pending = frontend.submit(&image).unwrap();
    let before = Instant::now();
    let err = pending.wait_timeout(Duration::from_millis(10)).unwrap_err();
    assert!(before.elapsed() < Duration::from_millis(150), "timeout must not overshoot");
    match err {
        Error::Timeout { waited } => assert!(waited >= Duration::from_millis(10)),
        other => panic!("expected Error::Timeout, got {other:?}"),
    }

    // the deadline flush eventually serves the cancelled slot — the
    // late result must be dropped, and the frontend must stay healthy
    std::thread::sleep(Duration::from_millis(400));
    let out = frontend.infer(&image).unwrap();
    assert_eq!(out.top1.len(), 1);

    let stats = frontend.shutdown();
    assert_eq!(stats.request_timeouts, 1, "the expired wait must be counted");
    assert_eq!(stats.requests_failed, 0, "a cancel is not a serving-side failure");
    assert_eq!(stats.replica_panics, 0);
    assert_eq!(stats.replica_restarts, 0);
    assert!(!stats.failed);
}

#[test]
fn wait_deadline_in_the_past_times_out_immediately() {
    let cfg = ServeConfig::new(1, 1, 4).with_max_wait(Duration::from_millis(100));
    let frontend = BatchingFrontend::new(tiny_topology(), cfg).unwrap();
    let image = vec![0.5f32; SAMPLE];
    let pending = frontend.submit(&image).unwrap();
    let err = pending.wait_deadline(Instant::now() - Duration::from_millis(1)).unwrap_err();
    assert!(matches!(err, Error::Timeout { .. }));
    assert_eq!(frontend.stats().request_timeouts, 1);
}

#[test]
fn healthy_frontend_reports_zeroed_failure_counters() {
    let cfg = ServeConfig::new(1, 1, 2).with_max_wait(Duration::from_millis(1));
    let frontend = BatchingFrontend::new(tiny_topology(), cfg).unwrap();
    assert!(!frontend.failed());
    let out = frontend.infer(&vec![0.1f32; SAMPLE]).unwrap();
    assert_eq!(out.top1.len(), 1);
    let stats = frontend.shutdown();
    assert_eq!((stats.replica_panics, stats.replica_restarts, stats.requests_failed), (0, 0, 0));
    assert!(!stats.failed);
}

#[test]
fn restart_policy_builder_sets_the_knobs() {
    let cfg = ServeConfig::new(1, 1, 2).with_restart_policy(
        7,
        Duration::from_millis(3),
        Duration::from_millis(90),
    );
    assert_eq!(cfg.max_restart_attempts, 7);
    assert_eq!(cfg.restart_backoff, Duration::from_millis(3));
    assert_eq!(cfg.restart_backoff_cap, Duration::from_millis(90));
    // defaults exist and are sane
    let d = ServeConfig::new(1, 1, 2);
    assert!(d.max_restart_attempts >= 1);
    assert!(d.restart_backoff <= d.restart_backoff_cap);
}

#[test]
fn backoff_schedule_is_deterministic_jittered_and_capped() {
    let p = RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(80),
        jitter_seed: 42,
        retry_server_failures: false,
    };
    let a = p.backoff_schedule(7);
    let b = p.backoff_schedule(7);
    assert_eq!(a, b, "same seed must reproduce the schedule exactly");

    let other = RetryPolicy { jitter_seed: 0xBEEF, ..p.clone() };
    assert_ne!(a, other.backoff_schedule(7), "different seeds must desynchronize");

    // jitter keeps each delay in [base/2, base] of its exponential
    // step, and the cap bounds the tail
    let mut base = p.base_delay;
    for d in &a {
        assert!(*d >= base / 2 && *d <= base, "jitter range violated: {d:?} vs base {base:?}");
        base = (base * 2).min(p.max_delay);
    }
    assert!(a.last().unwrap() <= &p.max_delay);
}

/// A server that accepts but never answers: a configured read
/// timeout must surface as a typed `Error::Timeout`, not a hang.
#[test]
fn client_read_timeout_against_a_mute_server_is_typed() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // hold the connection open (drain whatever arrives) until the
        // client gives up and closes
        let mut buf = [0u8; 256];
        while matches!(stream.read(&mut buf), Ok(n) if n > 0) {}
    });
    let started = Instant::now();
    let err = match Client::connect_with(
        addr,
        ClientConfig::new().with_read_timeout(Duration::from_millis(120)),
    ) {
        Ok(_) => panic!("handshake against a mute server must not succeed"),
        Err(e) => e,
    };
    assert!(matches!(err, Error::Timeout { .. }), "got {err:?}");
    assert!(started.elapsed() >= Duration::from_millis(120));
    assert!(started.elapsed() < Duration::from_secs(5), "must not block unboundedly");
    server.join().unwrap();
}

/// Minimal protocol-v1 server half for the retry tests: handshake,
/// then `n_requests` served with the supplied responder.
fn fake_server_conn(
    stream: &mut TcpStream,
    n_requests: usize,
    respond: impl Fn(&mut TcpStream, u32, FrameType),
) {
    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_LEN);
    let hello = reader.read_frame(stream).unwrap();
    assert_eq!(hello.ty, FrameType::Hello);
    write_frame(stream, FrameType::HelloOk, hello.id, &encode_hello_ok(VERSION, "fake")).unwrap();
    for _ in 0..n_requests {
        let req = reader.read_frame(stream).unwrap();
        respond(stream, req.id, req.ty);
    }
}

/// A server that dies before answering the first request: the retry
/// policy must reconnect (fresh handshake included) and complete the
/// request on the second connection.
#[test]
fn retry_reconnects_after_pre_response_connection_loss() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // connection 1: handshake, swallow one request, close —
        // strictly pre-response, so the client may retry
        let (mut s, _) = listener.accept().unwrap();
        fake_server_conn(&mut s, 1, |_, _, _| {});
        drop(s);
        // connection 2: full service
        let (mut s, _) = listener.accept().unwrap();
        fake_server_conn(&mut s, 1, |stream, id, ty| {
            assert_eq!(ty, FrameType::Stats);
            write_frame(stream, FrameType::StatsOk, id, &encode_stats_ok("serve_models 0\n"))
                .unwrap();
        });
    });
    let mut client = Client::connect_with(
        addr,
        ClientConfig::new().with_timeouts(Duration::from_secs(10)).with_retry(RetryPolicy {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            ..RetryPolicy::default()
        }),
    )
    .unwrap();
    let text = client.stats(None).unwrap();
    assert!(text.contains("serve_models"));
    server.join().unwrap();
}

/// Without a retry policy the same pre-response loss is surfaced to
/// the caller as a typed error — no silent retry.
#[test]
fn no_retry_policy_means_no_silent_retry() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        fake_server_conn(&mut s, 1, |_, _, _| {});
        drop(s);
    });
    let mut client =
        Client::connect_with(addr, ClientConfig::new().with_timeouts(Duration::from_secs(10)))
            .unwrap();
    let err = client.stats(None).unwrap_err();
    assert!(
        matches!(err, Error::Serve(_) | Error::Io(_)),
        "pre-response loss must be a typed transport error, got {err:?}"
    );
    server.join().unwrap();
}
