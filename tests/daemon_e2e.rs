//! End-to-end tests of the `anatomy-serve` daemon over real loopback
//! TCP (DESIGN.md §9): multi-model routing with bit-parity against
//! direct sessions, deterministic load shed under queue saturation,
//! zero-downtime hot reload under concurrent traffic, and
//! hostile-input hardening at the wire level.

use anatomy::daemon::codec::{write_frame, FrameReader};
use anatomy::daemon::protocol::{
    encode_header, encode_hello, encode_infer, ErrorCode, FrameType, HEADER_LEN, VERSION,
};
use anatomy::daemon::{Client, Daemon, DaemonConfig, ModelConfig};
use anatomy::serve::ServeConfig;
use anatomy::tensor::rng::SplitMix64;
use anatomy::{ConvOpts, Error, GraphBuilder, InferenceSession, ModelSpec};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One precomputed request: the image, plus the probs/top1 a direct
/// session produced for it.
type ExpectedRequest = (Vec<f32>, Vec<f32>, Vec<usize>);

/// A tiny conv → pool → conv → gap → fc model; `seed` fixes the
/// random weight init, so equal seeds mean bit-identical networks.
fn tiny_model(hw: usize, classes: usize, seed: u64) -> ModelSpec {
    GraphBuilder::new()
        .seed(seed)
        .input("data", 3, hw, hw)
        .conv("c1", ConvOpts::k(8).rs(3).pad(1).bias().relu())
        .max_pool("p1", 2, 2, 0)
        .conv("c2", ConvOpts::k(8).rs(3).pad(1).bias().relu())
        .gap("g")
        .fc("fc", classes)
        .softmax("loss")
        .build()
        .expect("tiny topology is valid")
}

fn serve_cfg(replicas: usize, minibatch: usize) -> ServeConfig {
    ServeConfig::new(replicas, 1, minibatch).with_max_wait(Duration::from_millis(1))
}

/// Two models served concurrently over one TCP daemon: every response
/// must be bit-identical to a direct `InferenceSession` on the same
/// spec, under multi-threaded client traffic hitting both models.
#[test]
fn two_models_concurrently_bit_parity() {
    let alpha = tiny_model(8, 4, 11);
    let beta = tiny_model(12, 6, 22);
    let daemon = Daemon::bind(
        DaemonConfig::loopback(),
        vec![
            ModelConfig::new("alpha", &alpha, serve_cfg(1, 2)).unwrap(),
            ModelConfig::new("beta", &beta, serve_cfg(1, 2)).unwrap(),
        ],
    )
    .unwrap();
    let addr = daemon.local_addr();

    // precompute per-thread request streams and expected outputs
    const THREADS: usize = 4;
    const REQUESTS: usize = 8;
    let mut plans: Vec<(String, Vec<ExpectedRequest>)> = Vec::new();
    for t in 0..THREADS {
        let (name, spec) = if t % 2 == 0 { ("alpha", &alpha) } else { ("beta", &beta) };
        let mut session = InferenceSession::new(spec, 2, 1).unwrap();
        let elems = session.sample_elems();
        let mut rng = SplitMix64::new(0xe2e + t as u64);
        let mut stream = Vec::new();
        for _ in 0..REQUESTS {
            let mut image = vec![0.0f32; elems];
            rng.fill_f32(&mut image);
            let want = session.run_samples(&image, 1).unwrap();
            stream.push((image, want.probs, want.top1));
        }
        plans.push((name.to_string(), stream));
    }

    std::thread::scope(|scope| {
        for (name, stream) in &plans {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for (image, want_probs, want_top1) in stream {
                    let out = client.infer(name, 1, image).unwrap();
                    assert_eq!(&out.probs, want_probs, "model '{name}' must be bit-identical");
                    assert_eq!(&out.top1, want_top1);
                }
            });
        }
    });

    let stats = daemon.shutdown();
    assert!(stats.contains("serve_model_requests_total{model=\"alpha\"} 16"));
    assert!(stats.contains("serve_model_requests_total{model=\"beta\"} 16"));
    assert!(stats.contains("serve_models 2"));
}

/// Queue saturation sheds load with a typed Busy error over the wire:
/// 4 samples sit queued below a minibatch of 8 under a long flush
/// deadline, so a further 8-sample request overflows the 8-sample cap
/// deterministically.
#[test]
fn busy_load_shed_over_the_wire() {
    let model = tiny_model(8, 4, 33);
    let cfg = ServeConfig::new(1, 1, 8).with_max_wait(Duration::from_secs(30)).with_queue_cap(8);
    let daemon =
        Daemon::bind(DaemonConfig::loopback(), vec![ModelConfig::new("m", &model, cfg).unwrap()])
            .unwrap();
    let addr = daemon.local_addr();
    let elems = daemon.registry().frontend("m").unwrap().sample_elems();

    std::thread::scope(|scope| {
        // connection A: 4 samples — admitted, then parked waiting for
        // a full batch (the 30s deadline never fires in this test)
        let waiter = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.infer("m", 4, &vec![0.1f32; 4 * elems]).unwrap()
        });
        // wait until those 4 samples are visibly queued
        let mut observer = Client::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stats = observer.stats(Some("m")).unwrap();
            if stats.contains("serve_model_queue_depth{model=\"m\"} 4") {
                break;
            }
            assert!(Instant::now() < deadline, "samples never reached the queue");
            std::thread::sleep(Duration::from_millis(5));
        }

        // connection B: 8 more samples — 4 + 8 > cap 8, shed as Busy
        let mut client = Client::connect(addr).unwrap();
        let err = client.infer("m", 8, &vec![0.2f32; 8 * elems]).unwrap_err();
        match err {
            Error::Busy { queued, capacity } => {
                assert_eq!(queued, 4);
                assert_eq!(capacity, 8);
            }
            other => panic!("expected Error::Busy, got {other:?}"),
        }

        // 4 more samples fit exactly, complete the batch, and unpark A
        let out = client.infer("m", 4, &vec![0.3f32; 4 * elems]).unwrap();
        assert_eq!(out.top1.len(), 4);
        assert_eq!(waiter.join().unwrap().top1.len(), 4);
    });

    let stats = daemon.shutdown();
    assert!(stats.contains("serve_model_busy_rejections_total{model=\"m\"} 1"));
}

/// Hot reload under concurrent in-flight traffic: the daemon starts
/// on a known dict, the same dict is republished over the wire while
/// clients hammer the model, and every single response must succeed
/// and stay bit-identical to the donor session — a swap to identical
/// weights must be invisible except for the generation counter.
#[test]
fn hot_reload_under_traffic_bit_parity() {
    let spec = tiny_model(8, 4, 44);
    let mut donor = InferenceSession::new(&spec, 2, 1).unwrap();
    let dict = donor.network().state_dict();
    let elems = donor.sample_elems();

    // host with the donor's weights so pre-reload outputs match too
    let cfg = ServeConfig::new(2, 1, 2).with_max_wait(Duration::from_millis(1));
    let daemon = Daemon::bind(
        DaemonConfig::loopback(),
        vec![ModelConfig::new("m", &spec, cfg).unwrap().with_weights(dict.clone())],
    )
    .unwrap();
    let addr = daemon.local_addr();

    // fixed per-thread image, expected output from the donor session
    const THREADS: usize = 4;
    let mut expected = Vec::new();
    for t in 0..THREADS {
        let mut rng = SplitMix64::new(0x4e10ad + t as u64);
        let mut image = vec![0.0f32; elems];
        rng.fill_f32(&mut image);
        let want = donor.run_samples(&image, 1).unwrap();
        expected.push((image, want.probs));
    }

    const RELOADS: u64 = 10;
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let stop_at = Instant::now() + Duration::from_secs(4);
        for (image, want_probs) in &expected {
            let completed = &completed;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                while Instant::now() < stop_at {
                    let out = client.infer("m", 1, image).expect("no request may fail");
                    assert_eq!(
                        &out.probs, want_probs,
                        "identical weights must give identical outputs across reloads"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // reload the same dict over the wire while traffic is in flight
        let mut admin = Client::connect(addr).unwrap();
        for i in 1..=RELOADS {
            let generation = admin.reload("m", &dict).expect("reload must succeed");
            assert_eq!(generation, i, "each reload bumps the generation by one");
            std::thread::sleep(Duration::from_millis(150));
        }
    });

    assert!(completed.load(Ordering::Relaxed) > 0, "traffic threads must have run");
    let stats = daemon.shutdown();
    assert!(stats.contains(&format!("serve_model_reloads_total{{model=\"m\"}} {RELOADS}")));
    assert!(stats.contains(&format!("serve_model_weight_generation{{model=\"m\"}} {RELOADS}")));
    assert!(stats.contains("serve_model_reload_failures_total{model=\"m\"} 0"));
}

/// Read one frame off a raw blocking socket.
fn read_raw_frame(stream: &mut TcpStream) -> anatomy::daemon::protocol::Frame {
    FrameReader::new(1 << 20).read_frame(stream).expect("server answers with a frame")
}

/// Hostile input: every malformed byte stream is either answered with
/// a typed error frame or dropped — and the daemon keeps serving new
/// connections afterwards.
#[test]
fn hostile_inputs_do_not_take_the_daemon_down() {
    let model = tiny_model(8, 4, 55);
    let daemon = Daemon::bind(
        DaemonConfig::loopback().with_max_frame_len(1 << 16),
        vec![ModelConfig::new("m", &model, serve_cfg(1, 2)).unwrap()],
    )
    .unwrap();
    let addr = daemon.local_addr();
    let elems = daemon.registry().frontend("m").unwrap().sample_elems();

    // 1. truncated frame: half a header, then disconnect
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&encode_header(FrameType::Hello, 1, 64)[..10]).unwrap();
    } // dropped mid-frame

    // 2. bad magic: answered BadFrame, then closed
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut header = encode_header(FrameType::Hello, 1, 0);
        header[0] = b'X';
        s.write_all(&header).unwrap();
        let frame = read_raw_frame(&mut s);
        assert_eq!(frame.ty, FrameType::Error);
        let (code, ..) = anatomy::daemon::protocol::parse_error(&frame.payload).unwrap();
        assert_eq!(code, ErrorCode::BadFrame);
        // server closed: the next read sees EOF
        assert_eq!(s.read(&mut [0u8; 16]).unwrap(), 0);
    }

    // 3. wrong protocol version byte: answered VersionMismatch
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut header = encode_header(FrameType::Hello, 1, 0);
        header[4] = VERSION + 1;
        s.write_all(&header).unwrap();
        let frame = read_raw_frame(&mut s);
        let (code, ..) = anatomy::daemon::protocol::parse_error(&frame.payload).unwrap();
        assert_eq!(code, ErrorCode::VersionMismatch);
    }

    // 4. oversized frame: payload length over the daemon's cap is
    // rejected at the header, before any allocation
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&encode_header(FrameType::Infer, 1, (1 << 16) + 1)).unwrap();
        let frame = read_raw_frame(&mut s);
        let (code, ..) = anatomy::daemon::protocol::parse_error(&frame.payload).unwrap();
        assert_eq!(code, ErrorCode::BadFrame);
    }

    // 5. server→client frame type sent to the server: rejected + close
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, FrameType::InferOk, 7, &[]).unwrap();
        let frame = read_raw_frame(&mut s);
        assert_eq!(frame.ty, FrameType::Error);
        assert_eq!(frame.id, 7, "request-level errors echo the request id");
        assert_eq!(s.read(&mut [0u8; 16]).unwrap(), 0);
    }

    // 6. mid-request disconnect: a valid header + partial payload,
    // then the client vanishes
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, FrameType::Hello, 1, &encode_hello(VERSION, VERSION, "x")).unwrap();
        let _ = read_raw_frame(&mut s);
        let infer = encode_infer("m", 1, &vec![0.5f32; elems]);
        s.write_all(&encode_header(FrameType::Infer, 2, infer.len() as u32)).unwrap();
        s.write_all(&infer[..infer.len() / 2]).unwrap();
    } // dropped mid-payload

    // 7. well-formed but wrong: unknown model and bad payload size are
    // typed errors on a connection that stays open
    {
        let mut client = Client::connect(addr).unwrap();
        let err = client.infer("nope", 1, &vec![0.5f32; elems]).unwrap_err();
        assert!(matches!(err, Error::BadInput(_)), "unknown model: {err:?}");
        let err = client.infer("m", 1, &vec![0.5f32; elems - 1]).unwrap_err();
        assert!(matches!(err, Error::BadInput(_)), "wrong payload size: {err:?}");
        // same connection still serves good requests
        let out = client.infer("m", 1, &vec![0.5f32; elems]).unwrap();
        assert_eq!(out.top1.len(), 1);
    }

    // after all of the above, a fresh connection still works
    let mut client = Client::connect(addr).unwrap();
    let out = client.infer("m", 2, &vec![0.25f32; 2 * elems]).unwrap();
    assert_eq!(out.top1.len(), 2);

    let stats = daemon.shutdown();
    assert!(stats.contains("serve_wire_errors_total"));
}

/// The version negotiation round trip rejects clients whose offered
/// range excludes the server's version, with a VersionMismatch error.
#[test]
fn hello_version_negotiation() {
    let model = tiny_model(8, 4, 66);
    let daemon = Daemon::bind(
        DaemonConfig::loopback(),
        vec![ModelConfig::new("m", &model, serve_cfg(1, 2)).unwrap()],
    )
    .unwrap();
    let addr = daemon.local_addr();

    // offer only a future version: rejected and closed
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(&mut s, FrameType::Hello, 1, &encode_hello(VERSION + 1, VERSION + 4, "x")).unwrap();
    let frame = read_raw_frame(&mut s);
    assert_eq!(frame.ty, FrameType::Error);
    let (code, ..) = anatomy::daemon::protocol::parse_error(&frame.payload).unwrap();
    assert_eq!(code, ErrorCode::VersionMismatch);
    assert_eq!(s.read(&mut [0u8; HEADER_LEN]).unwrap(), 0);

    // a range spanning the server's version succeeds
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(&mut s, FrameType::Hello, 2, &encode_hello(VERSION, VERSION + 3, "x")).unwrap();
    let frame = read_raw_frame(&mut s);
    assert_eq!(frame.ty, FrameType::HelloOk);
    let (version, banner) = anatomy::daemon::protocol::parse_hello_ok(&frame.payload).unwrap();
    assert_eq!(version, VERSION);
    assert!(banner.starts_with("anatomy-serve/"));

    daemon.shutdown();
}
