//! Typed model API acceptance tests:
//!
//! * property: randomly assembled `GraphBuilder` models round-trip
//!   `spec → text → spec` losslessly (and the text emission is
//!   idempotent);
//! * property: `StateDict → bytes → StateDict` is bit-exact for
//!   arbitrary tensor inventories;
//! * parser rejection paths carry line numbers (duplicate names,
//!   dangling `bottom` refs) and construction paths return typed
//!   `Error`s — zero panics on malformed input;
//! * the headline round trip: a ResNet-sized bn-graph trained for a
//!   few steps, saved, reloaded into (frozen-stats, BN-folded)
//!   `InferenceSession`s — deterministic bit-identical serving that
//!   tracks the unfused frozen-stats reference forward.

use anatomy::gxm::{data::SyntheticData, Network};
use anatomy::serve::{BatchingFrontend, ServeConfig};
use anatomy::{ConvOpts, Error, GraphBuilder, InferenceSession, ModelSpec, StateDict};
use proptest::prelude::*;

/// Assemble a small but structurally varied model from random draws:
/// a conv trunk with optional bias/relu/pooling, an optional residual
/// join, and an optional two-branch concat.
#[allow(clippy::too_many_arguments)]
fn random_model(
    c_in: usize,
    hw: usize,
    trunk: usize,
    spatial: bool,
    bias: bool,
    relu: bool,
    residual: bool,
    branch: bool,
    pool_avg: bool,
    seed: u64,
) -> ModelSpec {
    let mut g = GraphBuilder::new().seed(seed).input("data", c_in, hw, hw);
    let mut last = "data".to_string();
    for i in 0..trunk {
        let name = format!("t{i}");
        let mut o = ConvOpts::k(16);
        if spatial {
            o = o.rs(3).pad(1);
        }
        if bias {
            o = o.bias();
        }
        if relu {
            o = o.relu();
        }
        // convs with physical input padding must not read a conv
        // output directly — interleave bn nodes exactly like the real
        // topologies do
        if spatial && i > 0 {
            g = g.bn_relu(&format!("t{i}bn"));
        }
        g = g.conv(&name, o);
        last = name;
    }
    if residual {
        g = g.bn("rbn0");
        g = g.conv("rc", ConvOpts::k(16)).bn_join("rbn", "rbn0", true);
        last = "rbn".to_string();
    }
    if branch {
        g = g
            .from(&last)
            .conv("ba", ConvOpts::k(8))
            .from(&last)
            .conv("bb", ConvOpts::k(8))
            .concat("mix", &["ba", "bb"]);
        last = "mix".to_string();
    }
    if pool_avg {
        g = g.from(&last).avg_pool("pp", 2, 2, 0);
    } else {
        g = g.from(&last).max_pool("pp", 2, 2, 0);
    }
    g.gap("g").fc("logits", 7).softmax("loss").build().expect("generated model is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spec_to_text_to_spec_is_lossless(
        c_in in 1usize..20,
        hw in 6usize..12,
        trunk in 1usize..4,
        spatial in any::<bool>(),
        bias in any::<bool>(),
        relu in any::<bool>(),
        residual in any::<bool>(),
        branch in any::<bool>(),
        pool_avg in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        let spec = random_model(c_in, hw, trunk, spatial, bias, relu, residual, branch, pool_avg, seed);
        let text = spec.to_text();
        let reparsed = ModelSpec::parse(&text).expect("emitted text parses");
        prop_assert_eq!(&spec, &reparsed, "text round trip must be lossless");
        prop_assert_eq!(text, reparsed.to_text(), "emission must be idempotent");
    }

    #[test]
    fn state_dict_bytes_round_trip_is_bit_exact(
        tensors in 1usize..6,
        dims0 in 1usize..5,
        dims1 in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = anatomy::tensor::rng::SplitMix64::new(seed);
        let mut sd = StateDict::new();
        for t in 0..tensors {
            let dims = if t % 2 == 0 { vec![dims0, dims1] } else { vec![dims0, dims1, 3] };
            let mut data = vec![0.0f32; dims.iter().product()];
            rng.fill_f32(&mut data);
            sd.insert(&format!("layer{t}.weight"), dims, data).unwrap();
        }
        let rt = StateDict::from_bytes(&sd.to_bytes()).expect("own bytes parse");
        // compare raw bits, not float equality
        for (name, e) in sd.iter() {
            let r = rt.get(name).expect("entry survives");
            prop_assert_eq!(&e.dims, &r.dims);
            let a: Vec<u32> = e.data.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = r.data.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b, "bit-exact payload");
        }
        prop_assert_eq!(sd.len(), rt.len());
    }
}

#[test]
fn parser_rejections_carry_line_numbers() {
    // duplicate name on line 3
    let e = ModelSpec::parse(
        "input name=d c=3 h=4 w=4\nconv name=c bottom=d k=8\nconv name=c bottom=d k=8\n",
    )
    .unwrap_err();
    match e {
        Error::Graph { node, line, message } => {
            assert_eq!(node, "c");
            assert_eq!(line, Some(3));
            assert!(message.contains("duplicate"), "{message}");
        }
        other => panic!("expected Graph error, got {other:?}"),
    }
    // dangling bottom on line 2 (comments/blanks preserved in count)
    let e =
        ModelSpec::parse("input name=d c=3 h=4 w=4\nconv name=c bottom=ghost k=8\n").unwrap_err();
    match e {
        Error::Graph { node, line, message } => {
            assert_eq!(node, "c");
            assert_eq!(line, Some(2));
            assert!(message.contains("undefined blob 'ghost'"), "{message}");
        }
        other => panic!("expected Graph error, got {other:?}"),
    }
    // token soup is a Parse error with the line
    let e = ModelSpec::parse("input name=d c=3 h=4 w=4\nwat is=this\n").unwrap_err();
    assert!(matches!(e, Error::Parse { line: 2, .. }), "{e:?}");
}

#[test]
fn construction_paths_are_typed_errors_not_panics() {
    // facade constructors on malformed text
    assert!(matches!(
        InferenceSession::new("conv name=c bottom=x k=4\n", 1, 1),
        Err(Error::Graph { .. })
    ));
    // shape violation (filter larger than input)
    let e = InferenceSession::new(
        "input name=d c=3 h=4 w=4\nconv name=c bottom=d k=8 r=9 s=9\n\
         gap name=g bottom=c\nfc name=f bottom=g k=2\nsoftmaxloss name=l bottom=f\n",
        1,
        1,
    );
    assert!(matches!(e, Err(Error::Shape { .. })));
    // bias + eltwise is executable now (BiasEltwise fused variant) —
    // but a shape-mismatched eltwise is still a typed error
    let e = ModelSpec::parse(
        "input name=d c=16 h=4 w=4\nconv name=a bottom=d k=16\nconv name=b bottom=a k=8\n\
         conv name=c bottom=b k=16 bias=1 eltwise=b\n\
         gap name=g bottom=c\nfc name=f bottom=g k=2\nsoftmaxloss name=l bottom=f\n",
    );
    assert!(matches!(e, Err(Error::Shape { .. })));
    // degenerate runtime parameters
    let ok = "input name=d c=3 h=4 w=4\ngap name=g bottom=d\nfc name=f bottom=g k=2\n\
              softmaxloss name=l bottom=f\n";
    assert!(matches!(InferenceSession::new(ok, 0, 1), Err(Error::BadInput(_))));
    assert!(matches!(InferenceSession::new(ok, 1, 0), Err(Error::BadInput(_))));
    assert!(matches!(
        BatchingFrontend::new(ok, ServeConfig::new(0, 1, 1)),
        Err(Error::BadInput(_))
    ));
}

#[test]
fn run_paths_validate_input_lengths() {
    let ok = "input name=d c=3 h=4 w=4\nconv name=c bottom=d k=8 relu=1\ngap name=g bottom=c\n\
              fc name=f bottom=g k=2\nsoftmaxloss name=l bottom=f\n";
    let mut session = InferenceSession::new(ok, 2, 1).unwrap();
    let sample = session.sample_elems();
    // short batch, long batch, bad counts — all typed errors
    assert!(matches!(session.run(&vec![0.0; sample]), Err(Error::BadInput(_))));
    assert!(matches!(session.run(&vec![0.0; 3 * sample]), Err(Error::BadInput(_))));
    assert!(matches!(session.run_samples(&[], 0), Err(Error::BadInput(_))));
    assert!(matches!(session.run_samples(&vec![0.0; 3 * sample], 3), Err(Error::BadInput(_))));
    assert!(matches!(session.run_samples(&vec![0.0; sample + 1], 1), Err(Error::BadInput(_))));
    // and the good path still serves
    assert_eq!(session.run(&vec![0.1; 2 * sample]).unwrap().top1.len(), 2);

    let frontend = BatchingFrontend::new(ok, ServeConfig::new(1, 1, 2)).unwrap();
    assert!(matches!(frontend.submit(&[]), Err(Error::BadInput(_))));
    assert!(matches!(frontend.submit(&vec![0.0; sample + 1]), Err(Error::BadInput(_))));
    let out = frontend.infer(&vec![0.2; sample]).unwrap();
    assert_eq!(out.top1.len(), 1);
    frontend.shutdown();
}

/// The acceptance criterion: a ResNet-sized bn-graph trained for a
/// few steps, saved via `StateDict`, reloaded into (fused, frozen
/// stats) `InferenceSession`s — two independent sessions serve
/// bit-identically, the fused executor tracks the unfused
/// frozen-stats reference forward, and distinct weights produce
/// distinct outputs.
#[test]
fn resnet_train_save_load_serve_is_deterministic_and_frozen() {
    let minibatch = 2;
    let classes = 10;
    let model = anatomy::topologies::resnet50_model(32, classes).with_seed(77);

    let mut net = Network::build(&model, minibatch, 4).expect("valid model");
    let mut data = SyntheticData::new(classes, 3, 32, 32, 3);
    for _ in 0..2 {
        let labels = data.next_batch(net.input_mut());
        let s = net.train_step(&labels, 0.002, 0.9);
        assert!(s.loss.is_finite());
    }
    // calibrate the BN running statistics to the trained weights
    // (training-mode forwards accumulate the EMAs without SGD) —
    // frozen-stats serving needs statistics that describe the
    // weights actually being served
    for _ in 0..10 {
        data.next_batch(net.input_mut());
        net.forward();
    }

    // save through the real binary format
    let path = std::env::temp_dir().join("anatomy_resnet_roundtrip.anat");
    net.state_dict().save(&path).expect("saves");
    let sd = StateDict::load(&path).expect("loads");
    std::fs::remove_file(&path).ok();

    let probe: Vec<f32> = {
        let mut rng = anatomy::tensor::rng::SplitMix64::new(404);
        let mut v = vec![0.0f32; minibatch * 3 * 32 * 32];
        rng.fill_f32(&mut v);
        v
    };

    // two independent fused sessions serving the same dict must be
    // bit-identical (serving is deterministic in the weights alone)
    let mut session = InferenceSession::new(&model, minibatch, 4).expect("valid model");
    session.load_state_dict(&sd).expect("dict matches");
    let net_ref = session.network();
    assert!(net_ref.folded_bn_count() > 0, "ResNet-50 must fold BNs in inference");
    let served = session.run(&probe).expect("probe sized to session");
    let mut twin = InferenceSession::new(&model, minibatch, 4).expect("valid model");
    twin.load_state_dict(&sd).expect("dict matches");
    let served2 = twin.run(&probe).expect("probe sized to session");
    let a: Vec<u32> = served.probs.iter().map(|v| v.to_bits()).collect();
    let b: Vec<u32> = served2.probs.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b, "independent sessions must serve the identical bits");

    // the fused executor tracks the unfused frozen-stats reference
    let mut reference = InferenceSession::new_unfused(&model, minibatch, 4).expect("valid model");
    assert_eq!(reference.network().folded_bn_count(), 0);
    reference.load_state_dict(&sd).expect("dict matches");
    let want = reference.run(&probe).expect("probe sized to session");
    assert_eq!(served.top1, want.top1, "fused and unfused top-1 must agree");
    let n = anatomy::tensor::Norms::compare(&want.probs, &served.probs);
    assert!(n.ok(1e-4), "fused vs unfused frozen-stats reference: {n}");

    // a fresh (differently seeded) un-loaded session must NOT match —
    // the equality above is the weights, not the architecture
    let mut fresh = InferenceSession::new(model.clone().with_seed(123456), minibatch, 4).unwrap();
    let other = fresh.run(&probe).expect("probe sized to session");
    assert_ne!(other.probs, served.probs, "distinct weights must produce distinct outputs");
}
