//! Minimal vendored subset of the `proptest` crate.
//!
//! The build container has no network access to crates.io, so this
//! shim implements the slice of proptest's API the workspace tests
//! use: the `proptest!` macro with `#![proptest_config(...)]`,
//! integer-range strategies, `any::<bool>()`, `prop::sample::select`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros. Sampling is purely random-uniform and **deterministic**:
//! the RNG is seeded from the test name, so every run explores the
//! same cases (no shrinking, no failure persistence). Strategies here
//! only produce `Copy` values, which the failure reporting in the
//! macro relies on. Swap the `proptest` path dependency for the
//! registry crate to get the real engine.

/// Runner configuration — only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property assertion (carried out of the test closure).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod test_runner {
    pub use crate::{ProptestConfig, TestCaseError};

    /// SplitMix64 seeded from the test name — deterministic per test.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// Anything the `arg in strategy` syntax can sample from.
pub trait Strategy {
    type Value;
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )+};
}

impl_signed_range_strategy!(i64, i32, i16, i8);

macro_rules! impl_inclusive_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i64).wrapping_sub(*self.start() as i64) as u64 + 1;
                (*self.start() as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )+};
}

impl_inclusive_range_strategy!(usize, u32, u16, u8, i64, i32, i16, i8);

/// Uniform floats over `[start, end)` — 24 bits of mantissa entropy,
/// plenty for property sampling.
impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn pick(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Fixed-length vector of independently sampled elements.
    pub struct VecStrategy<S>(S, usize);

    /// Mirrors proptest's `collection::vec` for an exact length.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy(element, len)
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.1).map(|_| self.0.pick(rng)).collect()
        }
    }
}

/// `any::<T>()` — uniform over the whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn pick(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub struct Select<T>(Vec<T>);

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    /// Mirrors proptest's `prelude::prop` module alias of the crate root.
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Define property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running `cases` sampled instances.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    let mut args = ::std::string::String::new();
                    $(args.push_str(&format!("{}={:?} ", stringify!($arg), &$arg));)+
                    panic!("property {} failed at case {case}: {e}\n  args: {args}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Silently discard the current case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::pick(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_wires_args_and_assertions(
            x in 1usize..5,
            flag in any::<bool>(),
            pick in prop::sample::select(vec![10u64, 20]),
        ) {
            prop_assume!(x > 0);
            prop_assert!(x < 5, "x out of range: {x}");
            prop_assert_eq!(pick % 10, 0);
            let _ = flag;
        }
    }
}
