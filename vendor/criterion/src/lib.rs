//! Minimal vendored subset of the `criterion` bench harness.
//!
//! The container has no network access to crates.io, so this shim
//! provides just the API surface the workspace's benches use —
//! [`Criterion`], benchmark groups, `iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a
//! timing-only implementation (median of a fixed number of timed
//! runs after warmup, printed to stdout). Swap for the real registry
//! crate when online; the bench sources compile unchanged.

use std::time::{Duration, Instant};

/// Entry point handed to every bench function (mirrors
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _c: self, name: name.into(), sample_size }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size), n: self.sample_size };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(Duration::ZERO);
        println!("bench {}/{}: median {:?} over {} samples", self.name, id, median, b.n);
        self
    }

    /// Close the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// Drives the measured closure (mirrors `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    n: usize,
}

impl Bencher {
    /// Measure `routine`: one warmup call, then `sample_size` timed
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.n {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Prevent the compiler from optimizing away a value under test.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect bench functions into a runnable group (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`;
            // accept and ignore them the way real criterion does
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut runs = 0usize;
        g.sample_size(3).bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // one warmup + three timed samples
        assert_eq!(runs, 4);
    }
}
