//! Minimal vendored subset of the `libc` crate.
//!
//! The build container has no network access to crates.io, so this
//! workspace-local shim declares exactly the FFI surface the repo
//! uses: anonymous executable mappings for the JIT (`mmap`,
//! `mprotect`, `munmap`, `__errno_location`) and thread pinning for
//! the OpenMP-style pool (`sched_setaffinity`, `cpu_set_t`,
//! `CPU_SET`). Signatures and constant values match the real `libc`
//! crate on `x86_64-unknown-linux-gnu`, so replacing this path
//! dependency with the registry crate is a one-line manifest change.

#![allow(non_camel_case_types)]

pub type c_void = core::ffi::c_void;
pub type c_int = i32;
pub type size_t = usize;
pub type off_t = i64;
pub type pid_t = i32;

pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;
pub const PROT_EXEC: c_int = 0x4;

pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

pub const CPU_SETSIZE: c_int = 1024;

/// Linux's fixed 1024-bit CPU affinity mask.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE as usize / 64],
}

/// Equivalent of the C `CPU_SET` macro.
///
/// # Safety
/// Matches the real `libc` crate's `unsafe fn` signature; the
/// operation itself is a plain in-bounds bit set (out-of-range CPU
/// indices are ignored, as glibc does).
#[allow(clippy::missing_safety_doc, non_snake_case)]
pub unsafe fn CPU_SET(cpu: usize, cpuset: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        cpuset.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

#[cfg(unix)]
extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn __errno_location() -> *mut c_int;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_sets_expected_bit() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe { CPU_SET(3, &mut set) };
        assert_eq!(set.bits[0], 0b1000);
        unsafe { CPU_SET(64, &mut set) };
        assert_eq!(set.bits[1], 1);
        // Out-of-range index must be a no-op, not UB.
        unsafe { CPU_SET(100_000, &mut set) };
    }

    #[test]
    fn cpu_set_layout_matches_glibc() {
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
    }
}
